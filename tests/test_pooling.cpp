// Pooling layers: reference values and gradient checks.
#include <gtest/gtest.h>

#include "nn/pooling.hpp"
#include "test_util.hpp"

namespace mtlsplit {
namespace {

using testing::expect_gradients_match;

TEST(MaxPool2d, ReferenceValues) {
  nn::MaxPool2d pool(2, 2);
  Tensor x({1, 1, 4, 4});
  for (int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_TRUE(y.reshape({4}).equals(Tensor::from_values({5, 7, 13, 15})));
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  nn::MaxPool2d pool(2, 2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 9, 3, 4});
  pool.forward(x);
  const Tensor g = pool.backward(Tensor({1, 1, 1, 1}, 5.0f));
  EXPECT_TRUE(g.reshape({4}).equals(Tensor::from_values({0, 5, 0, 0})));
}

TEST(MaxPool2d, GradientsMatchFiniteDifferences) {
  Rng rng(1);
  nn::MaxPool2d pool(2, 2);
  Tensor x({2, 2, 4, 4});
  rng.fill_uniform(x, -1.0f, 1.0f);
  expect_gradients_match(pool, x, rng);
}

TEST(MaxPool2d, OddExtentFloorDivision) {
  nn::MaxPool2d pool(2, 2);
  EXPECT_EQ(pool.output_shape({1, 3, 5, 5}), (Shape{1, 3, 2, 2}));
  EXPECT_THROW(pool.output_shape({1, 3, 1, 4}), std::invalid_argument);
}

TEST(AvgPool2d, ReferenceValues) {
  nn::AvgPool2d pool(2, 2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 6});
  const Tensor y = pool.forward(x);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
}

TEST(AvgPool2d, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  nn::AvgPool2d pool(3, 2);
  Tensor x({2, 2, 7, 7});
  rng.fill_uniform(x, -1.0f, 1.0f);
  expect_gradients_match(pool, x, rng);
}

TEST(GlobalAvgPool, CollapsesSpatialDims) {
  nn::GlobalAvgPool gap;
  Tensor x({2, 3, 4, 4}, 2.0f);
  const Tensor y = gap.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], 2.0f);
  EXPECT_EQ(gap.output_shape({5, 7, 9, 9}), (Shape{5, 7}));
}

TEST(GlobalAvgPool, GradientsMatchFiniteDifferences) {
  Rng rng(3);
  nn::GlobalAvgPool gap;
  Tensor x({2, 3, 3, 3});
  rng.fill_uniform(x, -1.0f, 1.0f);
  expect_gradients_match(gap, x, rng);
}

TEST(Pooling, BackwardBeforeForwardThrows) {
  nn::MaxPool2d mp(2, 2);
  EXPECT_THROW(mp.backward(Tensor({1, 1, 1, 1})), std::invalid_argument);
  nn::AvgPool2d ap(2, 2);
  EXPECT_THROW(ap.backward(Tensor({1, 1, 1, 1})), std::invalid_argument);
  nn::GlobalAvgPool gap;
  EXPECT_THROW(gap.backward(Tensor({1, 1})), std::invalid_argument);
}

}  // namespace
}  // namespace mtlsplit
