// Flatten, Dropout, Identity, Sequential, SqueezeExcite.
#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/misc_layers.hpp"
#include "nn/sequential.hpp"
#include "nn/squeeze_excite.hpp"
#include "test_util.hpp"

namespace mtlsplit {
namespace {

using testing::expect_gradients_match;

TEST(Flatten, RoundTripsShape) {
  nn::Flatten fl;
  Tensor x({2, 3, 4, 5});
  for (int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i);
  const Tensor y = fl.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
  const Tensor g = fl.backward(y);
  EXPECT_EQ(g.shape(), x.shape());
  EXPECT_TRUE(g.equals(x));
  EXPECT_EQ(fl.output_shape({7, 2, 2, 2}), (Shape{7, 8}));
}

TEST(Dropout, EvalModeIsIdentity) {
  Rng rng(1);
  nn::Dropout drop(0.5f, rng);
  drop.set_training(false);
  Tensor x({100});
  rng.fill_uniform(x, -1.0f, 1.0f);
  EXPECT_TRUE(drop.forward(x).equals(x));
  EXPECT_TRUE(drop.backward(x).equals(x));
}

TEST(Dropout, TrainingDropsAndRescales) {
  Rng rng(2);
  nn::Dropout drop(0.4f, rng);
  Tensor x({20000}, 1.0f);
  const Tensor y = drop.forward(x);
  int64_t zeros = 0;
  double sum = 0.0;
  for (float v : y.span()) {
    if (v == 0.0f)
      ++zeros;
    else
      EXPECT_NEAR(v, 1.0f / 0.6f, 1e-5f);
    sum += v;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 20000.0, 0.4, 0.02);
  // Inverted dropout keeps the expectation.
  EXPECT_NEAR(sum / 20000.0, 1.0, 0.03);
}

TEST(Dropout, BackwardUsesSameMask) {
  Rng rng(3);
  nn::Dropout drop(0.5f, rng);
  Tensor x({50}, 1.0f);
  const Tensor y = drop.forward(x);
  const Tensor g = drop.backward(Tensor({50}, 1.0f));
  EXPECT_TRUE(g.equals(y));  // same mask and scale on ones
}

TEST(Dropout, RejectsBadProbability) {
  Rng rng(4);
  EXPECT_THROW(nn::Dropout(-0.1f, rng), std::invalid_argument);
  EXPECT_THROW(nn::Dropout(1.0f, rng), std::invalid_argument);
}

TEST(Identity, PassesThrough) {
  nn::Identity id;
  Tensor x({3}, 2.0f);
  EXPECT_TRUE(id.forward(x).equals(x));
  EXPECT_TRUE(id.backward(x).equals(x));
}

TEST(Sequential, ChainsAndBacksInReverse) {
  Rng rng(5);
  nn::Sequential seq;
  // Sigmoid (not ReLU) keeps the composite smooth so central differences
  // cannot straddle an activation kink.
  seq.emplace<nn::Linear>(4, 8, rng);
  seq.emplace<nn::Sigmoid>();
  seq.emplace<nn::Linear>(8, 2, rng);
  EXPECT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq.output_shape({5, 4}), (Shape{5, 2}));
  EXPECT_EQ(seq.parameters().size(), 4u);  // 2 weights + 2 biases

  Tensor x({5, 4});
  rng.fill_uniform(x, -1.0f, 1.0f);
  expect_gradients_match(seq, x, rng);
}

TEST(Sequential, PrefixSuffixComposition) {
  Rng rng(6);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(3, 5, rng);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::Linear>(5, 2, rng);
  Tensor x({2, 3});
  rng.fill_uniform(x, -1.0f, 1.0f);
  const Tensor whole = seq.forward(x);
  for (size_t k = 0; k <= seq.size(); ++k) {
    const Tensor mid = seq.forward_prefix(x, k);
    EXPECT_EQ(mid.shape(), seq.output_shape_prefix({2, 3}, k));
    const Tensor rejoined = seq.forward_suffix(mid, k);
    EXPECT_TRUE(rejoined.equals(whole)) << "split at " << k;
  }
  EXPECT_THROW(seq.forward_prefix(x, 4), std::out_of_range);
}

TEST(Sequential, FlopsPrefixIsMonotone) {
  Rng rng(7);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(10, 10, rng);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::Linear>(10, 10, rng);
  const Shape in{1, 10};
  int64_t prev = 0;
  for (size_t k = 0; k <= seq.size(); ++k) {
    const int64_t f = seq.flops_prefix(in, k);
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_EQ(seq.flops(in), prev);
}

TEST(Sequential, RejectsNullModule) {
  nn::Sequential seq;
  EXPECT_THROW(seq.add(nullptr), std::invalid_argument);
  EXPECT_THROW(seq.layer(0), std::out_of_range);
}

TEST(SqueezeExcite, PreservesShapeAndScales) {
  Rng rng(8);
  nn::SqueezeExcite se(4, 2, rng);
  Tensor x({2, 4, 3, 3});
  rng.fill_uniform(x, 0.1f, 1.0f);
  const Tensor y = se.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  // Gate is in (0,1]: output magnitude never exceeds input magnitude.
  for (int64_t i = 0; i < x.numel(); ++i)
    EXPECT_LE(std::abs(y[i]), std::abs(x[i]) + 1e-6f);
}

TEST(SqueezeExcite, GradientsMatchFiniteDifferences) {
  Rng rng(9);
  nn::SqueezeExcite se(3, 2, rng);
  Tensor x({2, 3, 3, 3});
  rng.fill_uniform(x, -1.0f, 1.0f);
  // The gate path makes gradients small; loosen absolute tolerance a bit.
  testing::GradCheckOptions opt;
  opt.atol = 3e-2f;
  expect_gradients_match(se, x, rng, opt);
}

TEST(SqueezeExcite, ParameterCount) {
  Rng rng(10);
  nn::SqueezeExcite se(8, 4, rng);
  // fc1: 8->2 (16+2), fc2: 2->8 (16+8).
  int64_t params = 0;
  for (auto* p : se.parameters()) params += p->value.numel();
  EXPECT_EQ(params, 16 + 2 + 16 + 8);
}

}  // namespace
}  // namespace mtlsplit
