// Serving layer: request queue, dynamic batcher, batched deployment entry
// point, and the multi-client ScServer (DESIGN.md §8).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "mtl/model_factory.hpp"
#include "serve/server.hpp"
#include "tensor/tensor_ops.hpp"

namespace mtlsplit {
namespace {

using namespace std::chrono_literals;

struct ServeRig {
  std::vector<std::unique_ptr<core::MtlSplitModel>> models;
  Tensor x;  // [1, 3, 16, 16]

  /// @p replicas structurally identical models, all holding model 0's
  /// weights (the ScServer contract).
  explicit ServeRig(size_t replicas = 1, uint64_t seed = 1) {
    core::ModelFactoryConfig cfg;
    cfg.backbone = models::BackboneKind::kMobileNetV3;
    cfg.image_shape = {3, 16, 16};
    for (size_t r = 0; r < replicas; ++r) {
      Rng rng(seed + 100 * r);  // distinct init, overwritten by copy below
      models.push_back(core::make_mtl_model(cfg, {{"a", 4}, {"b", 3}}, rng));
      models.back()->set_training(false);
      if (r > 0) core::copy_model_state(*models.back(), *models[0]);
    }
    Rng rng(seed + 7);
    x = Tensor({1, 3, 16, 16});
    rng.fill_uniform(x, 0.0f, 1.0f);
  }

  Tensor random_input(uint64_t seed) const {
    Rng rng(seed);
    Tensor t({1, 3, 16, 16});
    rng.fill_uniform(t, 0.0f, 1.0f);
    return t;
  }
};

// ------------------------------------------------------------- RequestQueue

TEST(RequestQueue, SubmitPopRoundTrip) {
  serve::RequestQueue q;
  auto fut = q.submit(Tensor({1, 3, 4, 4}, 0.5f));
  EXPECT_EQ(q.size(), 1u);
  serve::Request r;
  ASSERT_TRUE(q.pop(r));
  EXPECT_EQ(r.id, 0u);
  EXPECT_EQ(r.x.size(0), 1);
  sc::InferenceResult res;
  res.logits.push_back(Tensor({1, 2}, 3.0f));
  r.promise.set_value(std::move(res));
  EXPECT_FLOAT_EQ(fut.get().logits[0][0], 3.0f);
  EXPECT_EQ(q.accepted(), 1u);
}

TEST(RequestQueue, CloseRejectsSubmitAndDrains) {
  serve::RequestQueue q;
  (void)q.submit(Tensor({1, 1, 2, 2}));
  q.close();
  EXPECT_THROW((void)q.submit(Tensor({1, 1, 2, 2})), std::runtime_error);
  serve::Request r;
  EXPECT_TRUE(q.pop(r));   // queued work still drains
  EXPECT_FALSE(q.pop(r));  // then closed + empty
}

TEST(RequestQueue, RejectsNonBatchInput) {
  serve::RequestQueue q;
  EXPECT_THROW((void)q.submit(Tensor({3, 4})), std::invalid_argument);
}

TEST(RequestQueue, CapacityExertsBackpressure) {
  serve::RequestQueue q(/*capacity=*/1);
  (void)q.submit(Tensor({1, 1, 2, 2}));
  std::atomic<bool> second_accepted{false};
  std::thread producer([&] {
    (void)q.submit(Tensor({1, 1, 2, 2}));
    second_accepted = true;
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(second_accepted);  // full: the producer is blocked
  serve::Request r;
  ASSERT_TRUE(q.pop(r));
  producer.join();
  EXPECT_TRUE(second_accepted);
}

TEST(RequestQueue, PopUntilTimesOutWhenIdle) {
  serve::RequestQueue q;
  serve::Request r;
  EXPECT_FALSE(
      q.pop_until(r, std::chrono::steady_clock::now() + 5ms));
}

// ----------------------------------------------------------- DynamicBatcher

TEST(DynamicBatcher, CoalescesBackloggedRequestsUpToMaxSize) {
  serve::RequestQueue q;
  for (int i = 0; i < 6; ++i) (void)q.submit(Tensor({1, 1, 2, 2}));
  serve::DynamicBatcher b(q, {.max_batch_size = 4, .max_wait_us = 0});
  std::vector<serve::Request> batch;
  ASSERT_TRUE(b.next_batch(batch));
  EXPECT_EQ(batch.size(), 4u);
  ASSERT_TRUE(b.next_batch(batch));
  EXPECT_EQ(batch.size(), 2u);
  // Fulfil the promises so no future is abandoned with a broken promise.
  for (auto& r : batch) r.promise.set_value({});
}

TEST(DynamicBatcher, ZeroWaitTakesOnlyWhatIsQueued) {
  serve::RequestQueue q;
  (void)q.submit(Tensor({1, 1, 2, 2}));
  serve::DynamicBatcher b(q, {.max_batch_size = 8, .max_wait_us = 0});
  std::vector<serve::Request> batch;
  ASSERT_TRUE(b.next_batch(batch));
  EXPECT_EQ(batch.size(), 1u);
}

TEST(DynamicBatcher, WaitWindowPicksUpLateArrivals) {
  serve::RequestQueue q;
  serve::DynamicBatcher b(q, {.max_batch_size = 4, .max_wait_us = 200000});
  std::thread producer([&] {
    (void)q.submit(Tensor({1, 1, 2, 2}));
    std::this_thread::sleep_for(10ms);
    (void)q.submit(Tensor({1, 1, 2, 2}));
  });
  std::vector<serve::Request> batch;
  ASSERT_TRUE(b.next_batch(batch));
  producer.join();
  EXPECT_EQ(batch.size(), 2u);  // the late arrival joined the batch
  q.close();
  ASSERT_FALSE(b.next_batch(batch));
}

// --------------------------------------------------------------- infer_batch

TEST(InferBatch, BitwiseIdenticalToPerRequestInferFp32) {
  ServeRig rig;
  sc::Channel ch({.bandwidth_bps = 1e9, .base_latency_s = 0.001});
  sc::ScDeployment dep(*rig.models[0], ch, sc::jetson_nano(),
                       sc::rtx3090_server());
  std::vector<Tensor> inputs;
  for (uint64_t i = 0; i < 5; ++i) inputs.push_back(rig.random_input(30 + i));

  std::vector<sc::InferenceResult> expected;
  for (const Tensor& x : inputs) expected.push_back(dep.infer(x));

  const sc::BatchResult br = dep.infer_batch(ops::concat_batch(inputs));
  ASSERT_EQ(br.items.size(), inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    ASSERT_TRUE(br.items[i].ok());
    const auto& got = br.items[i].result;
    ASSERT_EQ(got.logits.size(), expected[i].logits.size());
    for (size_t j = 0; j < got.logits.size(); ++j)
      EXPECT_TRUE(got.logits[j].equals(expected[i].logits[j]))
          << "request " << i << " task " << j << " diverged in the batch";
    EXPECT_DOUBLE_EQ(got.latency.edge_compute_s,
                     expected[i].latency.edge_compute_s);
    EXPECT_DOUBLE_EQ(got.latency.transfer_s, expected[i].latency.transfer_s);
    EXPECT_DOUBLE_EQ(got.latency.server_compute_s,
                     expected[i].latency.server_compute_s);
    EXPECT_EQ(got.latency.wire_bytes, expected[i].latency.wire_bytes);
  }
}

TEST(InferBatch, BitwiseIdenticalToPerRequestInferInt8) {
  // Per-sample quantisation parameters are what make this hold: a
  // whole-batch scale would couple each request's logits to its batchmates.
  ServeRig rig;
  sc::Channel ch({.bandwidth_bps = 1e9});
  sc::ScDeployment dep(*rig.models[0], ch, sc::jetson_nano(),
                       sc::rtx3090_server(),
                       {.encoding = sc::ZbEncoding::kInt8});
  std::vector<Tensor> inputs;
  for (uint64_t i = 0; i < 4; ++i) inputs.push_back(rig.random_input(50 + i));
  std::vector<sc::InferenceResult> expected;
  for (const Tensor& x : inputs) expected.push_back(dep.infer(x));

  const sc::BatchResult br = dep.infer_batch(ops::concat_batch(inputs));
  for (size_t i = 0; i < inputs.size(); ++i) {
    ASSERT_TRUE(br.items[i].ok());
    for (size_t j = 0; j < expected[i].logits.size(); ++j)
      EXPECT_TRUE(
          br.items[i].result.logits[j].equals(expected[i].logits[j]))
          << "int8 request " << i << " task " << j << " diverged";
  }
}

TEST(InferBatch, CrcFailureMidBatchPoisonsOnlyTheCorruptedRequest) {
  ServeRig rig;
  std::vector<Tensor> inputs;
  for (uint64_t i = 0; i < 8; ++i) inputs.push_back(rig.random_input(70 + i));
  const Tensor batch = ops::concat_batch(inputs);

  // Clean reference for the surviving requests.
  sc::Channel clean({.bandwidth_bps = 1e9});
  sc::ScDeployment ref(*rig.models[0], clean, sc::jetson_nano(),
                       sc::rtx3090_server());
  const sc::BatchResult want = ref.infer_batch(batch);

  // Find a deterministic seed whose corruption stream hits some but not all
  // of the 8 messages; the per-byte corruption makes one inevitable fast.
  for (uint64_t seed = 0; seed < 64; ++seed) {
    sc::Channel noisy({.bandwidth_bps = 1e9,
                       .corrupt_prob = 0.0004f,
                       .seed = seed});
    sc::ScDeployment dep(*rig.models[0], noisy, sc::jetson_nano(),
                         sc::rtx3090_server());
    const sc::BatchResult got = dep.infer_batch(batch);
    size_t failed = 0;
    for (const auto& item : got.items) failed += item.ok() ? 0 : 1;
    if (failed == 0 || failed == got.items.size()) continue;

    for (size_t i = 0; i < got.items.size(); ++i) {
      if (!got.items[i].ok()) {
        EXPECT_THROW(std::rethrow_exception(got.items[i].error),
                     std::invalid_argument);
        EXPECT_TRUE(got.items[i].result.logits.empty());
      } else {
        for (size_t j = 0; j < want.items[i].result.logits.size(); ++j)
          EXPECT_TRUE(got.items[i].result.logits[j].equals(
              want.items[i].result.logits[j]))
              << "survivor " << i << " diverged from the clean run";
      }
    }
    return;  // found a mixed outcome and verified it
  }
  FAIL() << "no seed produced a partially corrupted batch";
}

// -------------------------------------------------------------- Channel fork

TEST(Channel, ForkKeepsLatencyModelAndDecorrelatesSessions) {
  sc::Channel base({.bandwidth_bps = 1e6,
                    .base_latency_s = 0.01,
                    .corrupt_prob = 0.5f,
                    .seed = 9});
  sc::Channel a = base.fork(0);
  sc::Channel b = base.fork(1);
  EXPECT_DOUBLE_EQ(a.transfer_time(1000), base.transfer_time(1000));
  EXPECT_NE(a.config().seed, b.config().seed);
  EXPECT_NE(a.config().seed, base.config().seed);
  // Sessions have independent stats.
  (void)a.transmit(std::vector<uint8_t>(16, 0));
  EXPECT_EQ(a.messages_sent(), 1);
  EXPECT_EQ(b.messages_sent(), 0);
  EXPECT_EQ(base.messages_sent(), 0);
}

// ------------------------------------------------------------------ ScServer

TEST(ScServer, ServesManyClientsBitwiseIdenticalToSequentialInfer) {
  const size_t kClients = 4, kPerClient = 6;
  ServeRig rig(/*replicas=*/2);

  // Sequential reference on a third, weight-identical replica.
  ServeRig ref_rig(1);
  core::copy_model_state(*ref_rig.models[0], *rig.models[0]);
  sc::Channel ref_ch({.bandwidth_bps = 1e9, .base_latency_s = 0.0005});
  sc::ScDeployment ref(*ref_rig.models[0], ref_ch, sc::jetson_nano(),
                       sc::rtx3090_server());

  std::vector<Tensor> inputs;
  std::vector<sc::InferenceResult> expected;
  for (size_t i = 0; i < kClients * kPerClient; ++i) {
    inputs.push_back(rig.random_input(900 + i));
    expected.push_back(ref.infer(inputs.back()));
  }

  sc::Channel link({.bandwidth_bps = 1e9, .base_latency_s = 0.0005});
  serve::ScServer server({rig.models[0].get(), rig.models[1].get()}, link,
                         sc::jetson_nano(), sc::rtx3090_server(),
                         {.batching = {.max_batch_size = 4,
                                       .max_wait_us = 2000}});
  ASSERT_EQ(server.num_workers(), 2u);

  std::vector<std::future<sc::InferenceResult>> futures(inputs.size());
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (size_t k = 0; k < kPerClient; ++k) {
        const size_t i = c * kPerClient + k;
        futures[i] = server.submit(inputs[i]);
      }
    });
  for (auto& t : clients) t.join();

  for (size_t i = 0; i < futures.size(); ++i) {
    const sc::InferenceResult got = futures[i].get();
    ASSERT_EQ(got.logits.size(), expected[i].logits.size());
    for (size_t j = 0; j < got.logits.size(); ++j)
      EXPECT_TRUE(got.logits[j].equals(expected[i].logits[j]))
          << "request " << i << " task " << j
          << " diverged between served and sequential execution";
    EXPECT_DOUBLE_EQ(got.latency.total_s(), expected[i].latency.total_s());
  }

  server.shutdown();
  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.completed,
            static_cast<int64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.failed, 0);
  EXPECT_GE(stats.batches, 6);  // 24 requests / max_batch_size 4
  EXPECT_GT(stats.wire_bytes, 0);
  EXPECT_GT(stats.wall_s, 0.0);
  EXPECT_GT(stats.throughput_rps(), 0.0);
  // The histogram accounts for every request and every batch.
  int64_t hist_batches = 0, hist_requests = 0;
  for (size_t b = 0; b < stats.batch_hist.size(); ++b) {
    hist_batches += stats.batch_hist[b];
    hist_requests += static_cast<int64_t>(b) * stats.batch_hist[b];
  }
  EXPECT_EQ(hist_batches, stats.batches);
  EXPECT_EQ(hist_requests, stats.completed + stats.failed);
  // Percentiles are ordered and drawn from real measurements.
  EXPECT_GT(stats.percentile(50), 0.0);
  EXPECT_LE(stats.percentile(50), stats.percentile(95));
  EXPECT_LE(stats.percentile(95), stats.percentile(99));
}

TEST(ScServer, Int8EncodingStaysBitwiseIdenticalToSequentialInt8) {
  ServeRig rig(1);
  ServeRig ref_rig(1);
  core::copy_model_state(*ref_rig.models[0], *rig.models[0]);
  sc::Channel ref_ch({.bandwidth_bps = 1e9});
  sc::ScDeployment ref(*ref_rig.models[0], ref_ch, sc::jetson_nano(),
                       sc::rtx3090_server(),
                       {.encoding = sc::ZbEncoding::kInt8});

  sc::Channel link({.bandwidth_bps = 1e9});
  serve::ScServer server(
      {rig.models[0].get()}, link, sc::jetson_nano(), sc::rtx3090_server(),
      {.batching = {.max_batch_size = 4, .max_wait_us = 1000},
       .deployment = {.encoding = sc::ZbEncoding::kInt8}});

  std::vector<Tensor> inputs;
  std::vector<std::future<sc::InferenceResult>> futures;
  for (uint64_t i = 0; i < 8; ++i) {
    inputs.push_back(rig.random_input(400 + i));
    futures.push_back(server.submit(inputs.back()));
  }
  for (size_t i = 0; i < inputs.size(); ++i) {
    const auto got = futures[i].get();
    const auto want = ref.infer(inputs[i]);
    for (size_t j = 0; j < want.logits.size(); ++j)
      EXPECT_TRUE(got.logits[j].equals(want.logits[j]))
          << "int8 served request " << i << " diverged";
  }
}

TEST(ScServer, MultiSampleRequestIsServedAsOneUnit) {
  ServeRig rig(1);
  sc::Channel link({.bandwidth_bps = 1e9});
  serve::ScServer server({rig.models[0].get()}, link, sc::jetson_nano(),
                         sc::rtx3090_server());
  Rng rng(61);
  Tensor x3({3, 3, 16, 16});
  rng.fill_uniform(x3, 0.0f, 1.0f);
  auto fut = server.submit(x3.clone());
  const sc::InferenceResult got = fut.get();
  const auto mono = rig.models[0]->forward(x3);
  ASSERT_EQ(got.logits.size(), mono.size());
  for (size_t j = 0; j < mono.size(); ++j) {
    ASSERT_EQ(got.logits[j].size(0), 3);
    EXPECT_TRUE(got.logits[j].equals(mono[j]))
        << "multi-sample request task " << j << " diverged from monolithic";
  }
  // Merged latency accounts for all three rows: each crossed as its own
  // wire message and each carries per-sample compute.
  sc::Channel ref_ch({.bandwidth_bps = 1e9});
  sc::ScDeployment ref(*rig.models[0], ref_ch, sc::jetson_nano(),
                       sc::rtx3090_server());
  const sc::InferenceResult one = ref.infer(ops::slice_batch(x3, 0, 1));
  EXPECT_DOUBLE_EQ(got.latency.edge_compute_s, 3 * one.latency.edge_compute_s);
  EXPECT_DOUBLE_EQ(got.latency.transfer_s, 3 * one.latency.transfer_s);
  EXPECT_DOUBLE_EQ(got.latency.server_compute_s,
                   3 * one.latency.server_compute_s);
  EXPECT_EQ(got.latency.wire_bytes, 3 * one.latency.wire_bytes);
  server.shutdown();
  EXPECT_EQ(server.stats().completed, 1);
}

TEST(ScServer, StreamedChunksAreBitwiseIdenticalToSequentialInfer) {
  ServeRig rig(1);
  ServeRig ref_rig(1);
  core::copy_model_state(*ref_rig.models[0], *rig.models[0]);
  sc::Channel ref_ch({.bandwidth_bps = 1e9});
  sc::ScDeployment ref(*ref_rig.models[0], ref_ch, sc::jetson_nano(),
                       sc::rtx3090_server());

  sc::Channel link({.bandwidth_bps = 1e9});
  serve::ScServer server({rig.models[0].get()}, link, sc::jetson_nano(),
                         sc::rtx3090_server());
  std::vector<Tensor> rows;
  for (uint64_t i = 0; i < 5; ++i) rows.push_back(rig.random_input(700 + i));
  auto chunks = server.submit_stream(ops::concat_batch(rows));
  ASSERT_EQ(chunks.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const sc::InferenceResult got = chunks[i].get();
    const sc::InferenceResult want = ref.infer(rows[i]);
    ASSERT_EQ(got.logits.size(), want.logits.size());
    for (size_t j = 0; j < want.logits.size(); ++j)
      EXPECT_TRUE(got.logits[j].equals(want.logits[j]))
          << "streamed chunk " << i << " task " << j << " diverged";
  }
  server.shutdown();
  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.completed, 1);  // one streaming request
  EXPECT_EQ(stats.failed, 0);
}

TEST(ScServer, ReplicaShardingRoutesAndServesEveryRequest) {
  // Four replicas, two per shard: both routing policies must deliver
  // bitwise-correct results from whichever shard served the request.
  ServeRig rig(/*replicas=*/4);
  ServeRig ref_rig(1);
  core::copy_model_state(*ref_rig.models[0], *rig.models[0]);
  sc::Channel ref_ch({.bandwidth_bps = 1e9});
  sc::ScDeployment ref(*ref_rig.models[0], ref_ch, sc::jetson_nano(),
                       sc::rtx3090_server());

  for (const serve::ShardingPolicy policy :
       {serve::ShardingPolicy::kHashClient,
        serve::ShardingPolicy::kLeastLoaded}) {
    sc::Channel link({.bandwidth_bps = 1e9});
    serve::ScServer server(
        {rig.models[0].get(), rig.models[1].get(), rig.models[2].get(),
         rig.models[3].get()},
        link, sc::jetson_nano(), sc::rtx3090_server(),
        {.batching = {.max_batch_size = 2, .max_wait_us = 500},
         .replicas_per_shard = 2,
         .sharding = policy});
    ASSERT_EQ(server.num_shards(), 2u);
    ASSERT_EQ(server.num_workers(), 4u);

    std::vector<Tensor> inputs;
    std::vector<std::future<sc::InferenceResult>> futures;
    for (uint64_t i = 0; i < 16; ++i) {
      inputs.push_back(rig.random_input(810 + i));
      futures.push_back(
          server.submit(inputs.back(), {.client_id = i % 4}));
    }
    for (size_t i = 0; i < inputs.size(); ++i) {
      const sc::InferenceResult got = futures[i].get();
      const sc::InferenceResult want = ref.infer(inputs[i]);
      for (size_t j = 0; j < want.logits.size(); ++j)
        EXPECT_TRUE(got.logits[j].equals(want.logits[j]))
            << "sharded request " << i << " diverged";
    }
    server.shutdown();
    EXPECT_EQ(server.stats().completed, 16);
  }
}

TEST(ScServer, LinkWindowIsReportedPerShardNotLastWriterWins) {
  // Regression: the congestion window used to be one scalar shared by
  // every shard, so whichever worker finished last overwrote the rest —
  // an idle shard's untouched link could mask (or be masked by) a busy
  // one. Per shard: a hash-pinned client keeps shard B idle, so exactly
  // one shard may report a live window and the idle one must stay 0.
  ServeRig rig(/*replicas=*/2);
  sc::Channel s0({.bandwidth_bps = 1e9,
                  .base_latency_s = 0.0001,
                  .link = {.mtu_bytes = 96, .max_retransmits = 8}});
  sc::Channel s1({.bandwidth_bps = 1e9,
                  .base_latency_s = 0.0001,
                  .link = {.mtu_bytes = 96, .max_retransmits = 8}});
  serve::ServeConfig cfg;
  cfg.batching = {.max_batch_size = 2, .max_wait_us = 200};
  cfg.replicas_per_shard = 1;
  cfg.sharding = serve::ShardingPolicy::kHashClient;
  cfg.work_stealing = false;  // keep the idle shard's link truly idle
  serve::ScServer server({rig.models[0].get(), rig.models[1].get()},
                         {&s0, &s1}, sc::jetson_nano(), sc::rtx3090_server(),
                         cfg);
  ASSERT_EQ(server.num_shards(), 2u);
  std::vector<std::future<sc::InferenceResult>> futures;
  for (uint64_t i = 0; i < 8; ++i)
    futures.push_back(server.submit(rig.random_input(910 + i),
                                    {.client_id = 42}));
  for (auto& f : futures) EXPECT_NO_THROW((void)f.get());
  server.shutdown();

  const serve::ServeStats s = server.stats();
  ASSERT_EQ(s.shard_link_window.size(), 2u);
  const size_t busy = s.shard_link_window[0] > 0.0 ? 0 : 1;
  EXPECT_GE(s.shard_link_window[busy], 1.0)
      << "the serving shard never reported its window";
  EXPECT_DOUBLE_EQ(s.shard_link_window[1 - busy], 0.0)
      << "the idle shard's window was clobbered by its sibling";
  EXPECT_DOUBLE_EQ(s.link_window, s.shard_link_window[busy]);
  // The same values, straight off the tree.
  for (size_t sh = 0; sh < 2; ++sh)
    EXPECT_DOUBLE_EQ(server.telemetry_tree().gauge_value(
                         "serve/shard" + std::to_string(sh) + "/link/window"),
                     s.shard_link_window[sh]);
  EXPECT_EQ(s.completed, 8);
}

TEST(ScServer, SubmitAfterShutdownThrows) {
  ServeRig rig(1);
  sc::Channel link({.bandwidth_bps = 1e9});
  serve::ScServer server({rig.models[0].get()}, link, sc::jetson_nano(),
                         sc::rtx3090_server());
  server.shutdown();
  server.shutdown();  // idempotent
  EXPECT_THROW((void)server.submit(rig.x.clone()), std::runtime_error);
}

TEST(ScServer, CorruptedChannelFailsFuturesNotTheServer) {
  ServeRig rig(1);
  sc::Channel link({.bandwidth_bps = 1e9, .corrupt_prob = 0.5f, .seed = 5});
  serve::ScServer server({rig.models[0].get()}, link, sc::jetson_nano(),
                         sc::rtx3090_server(),
                         {.batching = {.max_batch_size = 2,
                                       .max_wait_us = 500}});
  std::vector<std::future<sc::InferenceResult>> futures;
  for (uint64_t i = 0; i < 6; ++i)
    futures.push_back(server.submit(rig.random_input(500 + i)));
  size_t failed = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
    } catch (const std::invalid_argument&) {
      ++failed;  // CRC rejection surfaced through the future
    }
  }
  server.shutdown();
  EXPECT_GT(failed, 0u);  // p(corrupt byte) = 0.5: all messages corrupt
  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.failed, static_cast<int64_t>(failed));
  EXPECT_EQ(stats.completed + stats.failed, 6);
}

}  // namespace
}  // namespace mtlsplit
