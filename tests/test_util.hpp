// Shared test helpers: finite-difference gradient checking.
//
// Every layer's backward() is validated against central finite differences
// of a scalar probe loss L = sum(forward(x) .* W) for a fixed random W:
// the analytic input gradient must equal backward(W), and each parameter's
// accumulated gradient must match the numerical derivative of L wrt that
// parameter entry.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "nn/module.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace mtlsplit::testing {

/// Probe loss L = sum(m.forward(x) .* w).
inline float probe_loss(nn::Module& m, const Tensor& x, const Tensor& w) {
  const Tensor y = m.forward(x);
  return ops::sum(ops::mul(y, w));
}

struct GradCheckOptions {
  float eps = 1e-2f;    ///< central-difference step
  float atol = 2e-2f;   ///< absolute tolerance
  float rtol = 5e-2f;   ///< relative tolerance
  bool check_params = true;
  bool check_input = true;
};

/// Central-difference gradient check of @p m at input @p x.
/// @p rng supplies the probe weights.
inline void expect_gradients_match(nn::Module& m, Tensor x, Rng& rng,
                                   const GradCheckOptions& opt = {}) {
  const Shape out_shape = m.output_shape(x.shape());
  Tensor w(out_shape);
  rng.fill_uniform(w, -1.0f, 1.0f);

  // Analytic gradients.
  m.zero_grad();
  (void)m.forward(x);
  const Tensor dx = m.backward(w);
  ASSERT_EQ(dx.shape(), x.shape());
  std::vector<Tensor> dparams;
  for (nn::Parameter* p : m.parameters()) dparams.push_back(p->grad);

  auto expect_close = [&](float analytic, float numeric, const char* what,
                          int64_t idx) {
    const float tol = opt.atol + opt.rtol * std::abs(numeric);
    EXPECT_NEAR(analytic, numeric, tol)
        << what << " gradient mismatch at flat index " << idx;
  };

  if (opt.check_input) {
    for (int64_t i = 0; i < x.numel(); ++i) {
      const float orig = x[i];
      x[i] = orig + opt.eps;
      const float lp = probe_loss(m, x, w);
      x[i] = orig - opt.eps;
      const float lm = probe_loss(m, x, w);
      x[i] = orig;
      expect_close(dx[i], (lp - lm) / (2.0f * opt.eps), "input", i);
    }
  }

  if (opt.check_params) {
    const auto params = m.parameters();
    for (size_t pi = 0; pi < params.size(); ++pi) {
      Tensor& v = params[pi]->value;
      for (int64_t i = 0; i < v.numel(); ++i) {
        const float orig = v[i];
        v[i] = orig + opt.eps;
        const float lp = probe_loss(m, x, w);
        v[i] = orig - opt.eps;
        const float lm = probe_loss(m, x, w);
        v[i] = orig;
        expect_close(dparams[pi][i], (lp - lm) / (2.0f * opt.eps),
                     params[pi]->name.c_str(), i);
      }
    }
  }
}

/// Uniform random tensor avoiding the kink neighbourhoods of the hard
/// activations (|x| near 0 and near 3), so finite differences stay valid.
inline Tensor smooth_random(const Shape& shape, Rng& rng,
                            float kink_margin = 0.08f) {
  Tensor t(shape);
  for (float& v : t.span()) {
    do {
      v = rng.uniform(-2.5f, 2.5f);
    } while (std::abs(v) < kink_margin || std::abs(std::abs(v) - 3.0f) < kink_margin);
  }
  return t;
}

}  // namespace mtlsplit::testing
