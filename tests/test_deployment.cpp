// LoC / RoC / SC deployment simulators (paper §2.1, §4.2).
#include <gtest/gtest.h>

#include "mtl/model_factory.hpp"
#include "sc/deployment.hpp"

namespace mtlsplit {
namespace {

struct Rig {
  std::unique_ptr<core::MtlSplitModel> model;
  Tensor x;

  explicit Rig(uint64_t seed = 1) {
    Rng rng(seed);
    core::ModelFactoryConfig cfg;
    cfg.backbone = models::BackboneKind::kMobileNetV3;
    cfg.image_shape = {3, 16, 16};
    model = core::make_mtl_model(cfg, {{"a", 4}, {"b", 3}}, rng);
    model->set_training(false);
    x = Tensor({2, 3, 16, 16});
    rng.fill_uniform(x, 0.0f, 1.0f);
  }
};

TEST(ScDeployment, MatchesMonolithicBitwise) {
  Rig rig;
  sc::Channel ch({.bandwidth_bps = 1e9});
  sc::ScDeployment dep(*rig.model, ch, sc::jetson_nano(),
                       sc::rtx3090_server());
  const auto mono = rig.model->forward(rig.x);
  const auto result = dep.infer(rig.x);
  ASSERT_EQ(result.logits.size(), 2u);
  for (size_t j = 0; j < 2; ++j)
    EXPECT_TRUE(result.logits[j].equals(mono[j]))
        << "task " << j << " diverged across the wire";
}

TEST(ScDeployment, Int8EncodingCloseToFp32) {
  Rig rig;
  sc::Channel ch({.bandwidth_bps = 1e9});
  sc::ScDeployment f32(*rig.model, ch, sc::jetson_nano(),
                       sc::rtx3090_server());
  sc::ScDeployment i8(*rig.model, ch, sc::jetson_nano(), sc::rtx3090_server(),
                      {.encoding = sc::ZbEncoding::kInt8});
  const auto rf = f32.infer(rig.x);
  const auto ri = i8.infer(rig.x);
  // int8 payload is ~4x smaller...
  EXPECT_LT(ri.latency.wire_bytes * 3, rf.latency.wire_bytes);
  // ...and logits stay close.
  for (size_t j = 0; j < 2; ++j)
    EXPECT_TRUE(ri.logits[j].allclose(rf.logits[j], 0.35f));
}

TEST(ScDeployment, LatencyComponentsPopulated) {
  Rig rig;
  sc::Channel ch({.bandwidth_bps = 1e6, .base_latency_s = 0.01});
  sc::ScDeployment dep(*rig.model, ch, sc::jetson_nano(),
                       sc::rtx3090_server());
  const auto r = dep.infer(rig.x);
  EXPECT_GT(r.latency.edge_compute_s, 0.0);
  EXPECT_GT(r.latency.transfer_s, 0.01);
  EXPECT_GT(r.latency.server_compute_s, 0.0);
  EXPECT_GT(r.latency.wire_bytes, 0);
  EXPECT_NEAR(r.latency.total_s(),
              r.latency.edge_compute_s + r.latency.transfer_s +
                  r.latency.server_compute_s,
              1e-12);
  // Channel statistics recorded the message.
  EXPECT_EQ(ch.messages_sent(), 1);
  EXPECT_EQ(ch.total_bytes(), r.latency.wire_bytes);
}

TEST(ScDeployment, CorruptedChannelRaises) {
  Rig rig;
  sc::Channel ch({.bandwidth_bps = 1e9, .corrupt_prob = 0.3f, .seed = 3});
  sc::ScDeployment dep(*rig.model, ch, sc::jetson_nano(),
                       sc::rtx3090_server());
  EXPECT_THROW(dep.infer(rig.x), std::invalid_argument);
}

TEST(ScDeployment, InferStreamMatchesSequentialBitwise) {
  Rig rig;
  sc::Channel seq_ch({.bandwidth_bps = 1e9});
  sc::ScDeployment seq(*rig.model, seq_ch, sc::jetson_nano(),
                       sc::rtx3090_server());
  std::vector<Tensor> inputs;
  Rng rng(17);
  for (int i = 0; i < 4; ++i) {
    Tensor x({1, 3, 16, 16});
    rng.fill_uniform(x, 0.0f, 1.0f);
    inputs.push_back(std::move(x));
  }
  std::vector<sc::InferenceResult> expected;
  for (const Tensor& x : inputs) expected.push_back(seq.infer(x));

  sc::Channel pipe_ch({.bandwidth_bps = 1e9});
  sc::ScDeployment pipe(*rig.model, pipe_ch, sc::jetson_nano(),
                        sc::rtx3090_server());
  const sc::StreamResult stream = pipe.infer_stream(inputs);
  ASSERT_EQ(stream.results.size(), inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    ASSERT_EQ(stream.results[i].logits.size(), expected[i].logits.size());
    for (size_t j = 0; j < expected[i].logits.size(); ++j)
      EXPECT_TRUE(stream.results[i].logits[j].equals(expected[i].logits[j]))
          << "item " << i << " task " << j
          << " diverged between pipelined and sequential execution";
    EXPECT_DOUBLE_EQ(stream.results[i].latency.total_s(),
                     expected[i].latency.total_s());
    EXPECT_GT(stream.results[i].latency.measured_wall_s, 0.0);
  }
  EXPECT_EQ(pipe_ch.messages_sent(), 4);
  EXPECT_GT(stream.measured_wall_s, 0.0);
  EXPECT_GT(stream.analytic_serial_s, 0.0);
  // Overlapping stages can only help, and the pipeline is never faster
  // than its slowest stage chain.
  EXPECT_LE(stream.analytic_pipelined_s, stream.analytic_serial_s + 1e-12);
  EXPECT_GT(stream.analytic_pipelined_s, 0.0);
}

TEST(ScDeployment, InferStreamPropagatesChannelCorruption) {
  Rig rig;
  sc::Channel ch({.bandwidth_bps = 1e9, .corrupt_prob = 0.3f, .seed = 3});
  sc::ScDeployment dep(*rig.model, ch, sc::jetson_nano(),
                       sc::rtx3090_server());
  std::vector<Tensor> inputs(3, rig.x);
  EXPECT_THROW(dep.infer_stream(inputs), std::invalid_argument);
}

TEST(ScDeployment, InferStreamEmptyInputIsANoop) {
  Rig rig;
  sc::Channel ch({.bandwidth_bps = 1e9});
  sc::ScDeployment dep(*rig.model, ch, sc::jetson_nano(),
                       sc::rtx3090_server());
  const sc::StreamResult r = dep.infer_stream({});
  EXPECT_TRUE(r.results.empty());
  EXPECT_EQ(r.measured_wall_s, 0.0);
}

TEST(RocDeployment, MatchesMonolithicAndShipsRawInput) {
  Rig rig;
  sc::Channel ch({.bandwidth_bps = 1e9});
  sc::RocDeployment dep(*rig.model, ch, sc::rtx3090_server());
  const auto mono = rig.model->forward(rig.x);
  const auto r = dep.infer(rig.x);
  for (size_t j = 0; j < 2; ++j)
    EXPECT_TRUE(r.logits[j].equals(mono[j]));
  // RoC wire payload == raw image bytes (+ header).
  EXPECT_GE(r.latency.wire_bytes, rig.x.numel() * 4);
  EXPECT_EQ(r.latency.edge_compute_s, 0.0);
}

TEST(RocVsSc, ScShipsFarFewerBytes) {
  // The §4.2 claim: Z_b is much lighter than the raw input.
  Rig rig;
  sc::Channel ch({.bandwidth_bps = 1e9});
  sc::ScDeployment scd(*rig.model, ch, sc::jetson_nano(),
                       sc::rtx3090_server());
  sc::RocDeployment rocd(*rig.model, ch, sc::rtx3090_server());
  const auto rs = scd.infer(rig.x);
  const auto rr = rocd.infer(rig.x);
  EXPECT_LT(rs.latency.wire_bytes, rr.latency.wire_bytes);
}

TEST(LocDeployment, RunsWhenModelFits) {
  Rig rig;
  sc::LocDeployment dep(*rig.model, sc::jetson_nano());
  ASSERT_TRUE(dep.feasible({3, 16, 16}));
  const auto mono = rig.model->forward(rig.x);
  const auto r = dep.infer(rig.x);
  for (size_t j = 0; j < 2; ++j)
    EXPECT_TRUE(r.logits[j].equals(mono[j]));
  EXPECT_EQ(r.latency.wire_bytes, 0);
  EXPECT_EQ(r.latency.transfer_s, 0.0);
  EXPECT_GT(r.latency.edge_compute_s, 0.0);
}

TEST(LocDeployment, ThrowsWhenMemoryExceeded) {
  Rig rig;
  sc::DeviceProfile tiny;
  tiny.name = "tiny MCU";
  tiny.memory_bytes = 1024;  // 1 KB: nothing fits
  tiny.effective_gflops = 0.001;
  sc::LocDeployment dep(*rig.model, tiny);
  EXPECT_FALSE(dep.feasible({3, 16, 16}));
  EXPECT_THROW(dep.infer(rig.x), std::runtime_error);
}

TEST(LocDeployment, MemoryGrowsWithHeadCount) {
  Rng rng(9);
  core::ModelFactoryConfig cfg;
  cfg.backbone = models::BackboneKind::kMobileNetV3;
  cfg.image_shape = {3, 16, 16};
  auto two = core::make_mtl_model(cfg, {{"a", 4}, {"b", 3}}, rng);
  auto three =
      core::make_mtl_model(cfg, {{"a", 4}, {"b", 3}, {"c", 2}}, rng);
  sc::LocDeployment d2(*two, sc::jetson_nano());
  sc::LocDeployment d3(*three, sc::jetson_nano());
  EXPECT_GT(d3.memory_bytes({3, 16, 16}), d2.memory_bytes({3, 16, 16}));
}

TEST(DeviceProfiles, PaperHardware) {
  const auto jetson = sc::jetson_nano();
  EXPECT_EQ(jetson.memory_bytes, 4LL << 30);
  const auto server = sc::rtx3090_server();
  EXPECT_GT(server.effective_gflops, jetson.effective_gflops * 10);
  EXPECT_TRUE(jetson.fits(1e9));
  EXPECT_FALSE(jetson.fits(5e9));
  EXPECT_GT(jetson.compute_time(1'000'000'000), 0.0);
}

}  // namespace
}  // namespace mtlsplit
