// Model zoo: backbone construction, shapes, parameter budgets, MBConv
// gradients, and the analytic profiler.
#include <gtest/gtest.h>

#include "models/backbone.hpp"
#include "models/blocks.hpp"
#include "models/mlp_head.hpp"
#include "models/profile.hpp"
#include "test_util.hpp"

namespace mtlsplit {
namespace {

using models::BackboneConfig;
using models::BackboneKind;
using models::BackboneScale;

TEST(MBConv, ResidualRequiresMatchingGeometry) {
  Rng rng(1);
  models::MBConvConfig cfg;
  cfg.in_c = 4;
  cfg.exp_c = 8;
  cfg.out_c = 4;
  cfg.stride = 1;
  models::MBConv with_res(cfg, rng);
  EXPECT_TRUE(with_res.has_residual());
  cfg.out_c = 6;
  models::MBConv diff_c(cfg, rng);
  EXPECT_FALSE(diff_c.has_residual());
  cfg.out_c = 4;
  cfg.stride = 2;
  models::MBConv strided(cfg, rng);
  EXPECT_FALSE(strided.has_residual());
}

TEST(MBConv, ForwardShapes) {
  Rng rng(2);
  models::MBConvConfig cfg;
  cfg.in_c = 3;
  cfg.exp_c = 12;
  cfg.out_c = 5;
  cfg.kernel = 3;
  cfg.stride = 2;
  cfg.use_se = true;
  models::MBConv block(cfg, rng);
  EXPECT_EQ(block.output_shape({2, 3, 8, 8}), (Shape{2, 5, 4, 4}));
  Tensor x({2, 3, 8, 8});
  rng.fill_uniform(x, -1.0f, 1.0f);
  EXPECT_EQ(block.forward(x).shape(), (Shape{2, 5, 4, 4}));
}

TEST(MBConv, GradientsMatchFiniteDifferences) {
  Rng rng(3);
  models::MBConvConfig cfg;
  cfg.in_c = 2;
  cfg.exp_c = 4;
  cfg.out_c = 2;
  cfg.kernel = 3;
  cfg.stride = 1;
  cfg.use_se = false;  // SE checked separately; keep the check fast
  cfg.act = models::ActKind::kSiLU;
  models::MBConv block(cfg, rng);
  Tensor x({2, 2, 4, 4});
  rng.fill_normal(x, 0.0f, 1.0f);
  // Residual + BN coupling: loosen tolerances slightly.
  testing::GradCheckOptions opt;
  opt.atol = 4e-2f;
  opt.rtol = 9e-2f;
  expect_gradients_match(block, x, rng, opt);
}

TEST(MBConv, RejectsBadConfig) {
  Rng rng(4);
  models::MBConvConfig cfg;
  cfg.in_c = 4;
  cfg.exp_c = 2;  // narrower than input
  cfg.out_c = 4;
  EXPECT_THROW(models::MBConv(cfg, rng), std::invalid_argument);
  cfg.exp_c = 8;
  cfg.kernel = 4;  // even kernel
  EXPECT_THROW(models::MBConv(cfg, rng), std::invalid_argument);
}

class EdgeBackbones : public ::testing::TestWithParam<BackboneKind> {};

TEST_P(EdgeBackbones, BuildsAndFlattens) {
  Rng rng(5);
  BackboneConfig cfg{GetParam(), BackboneScale::kEdge, 3};
  auto bb = models::build_backbone(cfg, rng);
  const int64_t dim = models::backbone_feature_dim(*bb, 3, 20, 20);
  EXPECT_GT(dim, 0);
  Tensor x({2, 3, 20, 20});
  rng.fill_uniform(x, 0.0f, 1.0f);
  const Tensor zb = bb->forward(x);
  EXPECT_EQ(zb.shape(), (Shape{2, dim}));
}

TEST_P(EdgeBackbones, ForwardBackwardRuns) {
  Rng rng(6);
  BackboneConfig cfg{GetParam(), BackboneScale::kEdge, 3};
  auto bb = models::build_backbone(cfg, rng);
  Tensor x({2, 3, 20, 20});
  rng.fill_uniform(x, 0.0f, 1.0f);
  const Tensor zb = bb->forward(x);
  Tensor g(zb.shape());
  rng.fill_uniform(g, -1.0f, 1.0f);
  const Tensor dx = bb->backward(g);
  EXPECT_EQ(dx.shape(), x.shape());
  // Some gradient must reach the input.
  EXPECT_GT(ops::sq_norm(dx), 0.0f);
}

TEST_P(EdgeBackbones, DeterministicGivenSeed) {
  BackboneConfig cfg{GetParam(), BackboneScale::kEdge, 3};
  Rng r1(7), r2(7);
  auto b1 = models::build_backbone(cfg, r1);
  auto b2 = models::build_backbone(cfg, r2);
  Tensor x({1, 3, 20, 20}, 0.5f);
  EXPECT_TRUE(b1->forward(x).equals(b2->forward(x)));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, EdgeBackbones,
                         ::testing::ValuesIn(models::kAllBackbones));

TEST(FullBackbones, ParameterBudgetsMatchPaperTable4) {
  Rng rng(8);
  // MobileNetV3-Small features: paper reports 0.9 M params.
  auto mnv3 = models::build_mobilenet_v3(BackboneScale::kFull, 3, rng);
  const int64_t p_mnv3 = mnv3->num_params();
  EXPECT_GT(p_mnv3, 800'000);
  EXPECT_LT(p_mnv3, 1'200'000);

  // EfficientNet-B0 features: paper reports 4 M params.
  auto effb0 = models::build_efficientnet(BackboneScale::kFull, 3, rng);
  const int64_t p_eff = effb0->num_params();
  EXPECT_GT(p_eff, 3'200'000);
  EXPECT_LT(p_eff, 5'500'000);

  // VGG16 features: the classic 14.7 M.
  auto vgg = models::build_vgg16(BackboneScale::kFull, 3, rng);
  const int64_t p_vgg = vgg->num_params();
  EXPECT_GT(p_vgg, 14'000'000);
  EXPECT_LT(p_vgg, 15'500'000);
}

TEST(FullBackbones, SpatialReductionAt224) {
  Rng rng(9);
  auto mnv3 = models::build_mobilenet_v3(BackboneScale::kFull, 3, rng);
  // Flatten output = 576 * 7 * 7 at 224x224 input.
  EXPECT_EQ(mnv3->output_shape({1, 3, 224, 224}), (Shape{1, 576 * 7 * 7}));
  auto eff = models::build_efficientnet(BackboneScale::kFull, 3, rng);
  EXPECT_EQ(eff->output_shape({1, 3, 224, 224}), (Shape{1, 1280 * 7 * 7}));
  auto vgg = models::build_vgg16(BackboneScale::kFull, 3, rng);
  EXPECT_EQ(vgg->output_shape({1, 3, 224, 224}), (Shape{1, 512 * 7 * 7}));
}

TEST(MlpHead, TwoLinearLayersWithRelu) {
  Rng rng(10);
  auto head = models::build_mlp_head({.in_dim = 16, .hidden_dim = 8,
                                      .num_classes = 4},
                                     rng);
  ASSERT_EQ(head->size(), 3u);
  EXPECT_EQ(head->layer(0).name(), "Linear");
  EXPECT_EQ(head->layer(1).name(), "ReLU");
  EXPECT_EQ(head->layer(2).name(), "Linear");
  EXPECT_EQ(head->output_shape({5, 16}), (Shape{5, 4}));
  EXPECT_THROW(
      models::build_mlp_head({.in_dim = 16, .hidden_dim = 8, .num_classes = 1},
                             rng),
      std::invalid_argument);
}

TEST(Profile, CountsMatchModuleIntrospection) {
  Rng rng(11);
  BackboneConfig cfg{BackboneKind::kMobileNetV3, BackboneScale::kEdge, 3};
  auto bb = models::build_backbone(cfg, rng);
  const models::ModelProfile p = models::profile_model(*bb, {1, 3, 20, 20});
  EXPECT_EQ(p.total_params, bb->num_params());
  EXPECT_EQ(p.output_shape, bb->output_shape({1, 3, 20, 20}));
  EXPECT_EQ(p.layers.size(), bb->size());
  EXPECT_GT(p.total_activation_elems, 0);
  EXPECT_GT(p.forward_backward_mb(), 0.0);
  EXPECT_NEAR(p.params_mb(),
              static_cast<double>(p.total_params) * 4.0 / (1024 * 1024),
              1e-9);
  const std::string table = models::profile_to_string(p);
  EXPECT_NE(table.find("total params"), std::string::npos);
}

TEST(Profile, ActivationsScaleWithBatch) {
  Rng rng(12);
  BackboneConfig cfg{BackboneKind::kVgg16, BackboneScale::kEdge, 3};
  auto bb = models::build_backbone(cfg, rng);
  const auto p1 = models::profile_model(*bb, {1, 3, 20, 20});
  const auto p8 = models::profile_model(*bb, {8, 3, 20, 20});
  EXPECT_EQ(p8.total_activation_elems, 8 * p1.total_activation_elems);
  EXPECT_EQ(p8.total_params, p1.total_params);
}

TEST(BackboneName, AllKindsNamed) {
  EXPECT_EQ(models::backbone_name(BackboneKind::kVgg16), "VGG16");
  EXPECT_EQ(models::backbone_name(BackboneKind::kMobileNetV3), "MobileNetV3");
  EXPECT_EQ(models::backbone_name(BackboneKind::kEfficientNet),
            "EfficientNet");
}

}  // namespace
}  // namespace mtlsplit
