// SLO lifecycle layer of the serving stack (DESIGN.md §8): request
// deadlines (admission / on-pop / pre-dispatch expiry, each settling
// exactly once), per-tenant token-bucket quotas above DRR, replica
// autoscaling between min/max with hysteresis, and cross-shard work
// stealing — all while served logits stay bitwise identical to
// sequential infer().
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <random>
#include <stdexcept>
#include <thread>

#include "mtl/model_factory.hpp"
#include "serve/server.hpp"
#include "tensor/tensor_ops.hpp"

namespace mtlsplit {
namespace {

using namespace std::chrono_literals;

Tensor tiny_input(int64_t rows = 1) {
  return Tensor({rows, 1, 2, 2}, 0.25f);
}

sc::InferenceResult dummy_result() {
  sc::InferenceResult r;
  r.logits.push_back(Tensor({1, 2}, 1.0f));
  return r;
}

/// Classifies a settled future: 0 = value, 1 = RejectedError (rejected),
/// 2 = RejectedError (shed), 3 = ThrottledError, 4/5/6 =
/// DeadlineExceededError at admission/queue/dispatch, 7 = other error.
/// get() throwing future_error (double settle) fails the test.
int settle_kind(std::future<sc::InferenceResult>& f) {
  try {
    (void)f.get();
    return 0;
  } catch (const serve::RejectedError& e) {
    return e.shed() ? 2 : 1;
  } catch (const serve::ThrottledError&) {
    return 3;
  } catch (const serve::DeadlineExceededError& e) {
    switch (e.phase()) {
      case serve::ExpiryPhase::kAdmission: return 4;
      case serve::ExpiryPhase::kQueue: return 5;
      case serve::ExpiryPhase::kDispatch: return 6;
    }
    return 7;
  } catch (const std::future_error& e) {
    ADD_FAILURE() << "future_error: settlement contract violated: "
                  << e.what();
    return 7;
  } catch (...) {
    return 7;
  }
}

// ------------------------------------------------------------- deadlines

TEST(Deadline, PreExpiredSettlesAtAdmission) {
  serve::RequestQueue q;
  auto f = q.submit(tiny_input(),
                    {.deadline = std::chrono::steady_clock::now() - 1ms});
  EXPECT_EQ(settle_kind(f), 4);  // kAdmission
  EXPECT_EQ(q.expired(), 1u);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.accepted(), 0u);  // never occupied a queue slot
}

TEST(Deadline, QueuedRequestExpiresOnPop) {
  serve::RequestQueue q;
  auto f_dead = q.submit(tiny_input(), {.ttl = 1ms});
  auto f_live = q.submit(tiny_input());
  std::this_thread::sleep_for(15ms);
  serve::Request r;
  ASSERT_TRUE(q.pop(r));
  EXPECT_EQ(settle_kind(f_dead), 5);  // kQueue: purged before service
  r.promise.set_value(dummy_result());
  EXPECT_EQ(settle_kind(f_live), 0);
  EXPECT_EQ(q.expired(), 1u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(Deadline, FullyExpiredBacklogDrainsWithoutServingAnything) {
  serve::RequestQueue q;
  std::vector<std::future<sc::InferenceResult>> futs;
  for (int i = 0; i < 3; ++i)
    futs.push_back(q.submit(tiny_input(), {.ttl = 1ms}));
  std::this_thread::sleep_for(15ms);
  serve::Request r;
  EXPECT_FALSE(q.pop_until(r, std::chrono::steady_clock::now() + 5ms));
  for (auto& f : futs) EXPECT_EQ(settle_kind(f), 5);
  EXPECT_EQ(q.expired(), 3u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(Deadline, BlockedSubmitterExpiresInsteadOfWaitingForever) {
  serve::RequestQueue q(serve::AdmissionConfig{
      .policy = serve::AdmissionPolicy::kBlock, .capacity = 1});
  auto f_fill = q.submit(tiny_input());
  // The queue is full and nobody pops: the bounded wait must end at the
  // request's own deadline, not block forever.
  auto f = q.submit(tiny_input(), {.ttl = 30ms});
  EXPECT_EQ(settle_kind(f), 4);  // kAdmission: never admitted
  EXPECT_EQ(q.expired(), 1u);
  q.close();
  serve::Request r;
  while (q.pop(r)) r.promise.set_value(dummy_result());
  EXPECT_EQ(settle_kind(f_fill), 0);
}

TEST(Deadline, StreamExpirySettlesEveryChunkFuture) {
  serve::RequestQueue q;
  auto chunks = q.submit_stream(
      tiny_input(3), {.deadline = std::chrono::steady_clock::now() - 1ms});
  ASSERT_EQ(chunks.size(), 3u);
  for (auto& c : chunks) EXPECT_EQ(settle_kind(c), 4);
  EXPECT_EQ(q.expired(), 1u);  // one request, however many chunks
}

TEST(Deadline, ExpireOverdueFiltersOnlyDeadRequestsPreservingOrder) {
  // The pre-dispatch gate, exercised deterministically: three hand-built
  // requests, the middle one dead.
  const auto now = std::chrono::steady_clock::now();
  std::vector<serve::Request> batch(3);
  std::vector<std::future<sc::InferenceResult>> futs;
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].id = i;
    batch[i].x = tiny_input();
    batch[i].deadline = i == 1
                            ? now - 1ms
                            : std::chrono::steady_clock::time_point::max();
    futs.push_back(batch[i].promise.get_future());
  }
  EXPECT_EQ(serve::expire_overdue(batch, now), 1u);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(batch[1].id, 2u);  // survivor order preserved
  EXPECT_EQ(settle_kind(futs[1]), 6);  // kDispatch
  for (size_t i : {0u, 2u}) {
    batch[i == 0 ? 0 : 1].promise.set_value(dummy_result());
    EXPECT_EQ(settle_kind(futs[i]), 0);
  }
}

// ---------------------------------------------------------------- quotas

TEST(Quota, BurstBoundsBackToBackSubmissions) {
  serve::AdmissionConfig cfg;
  cfg.client_quota[7] = {.rate = 0.001, .burst = 2.0};  // ~never refills
  serve::RequestQueue q(cfg);
  auto f1 = q.submit(tiny_input(), {.client_id = 7});
  auto f2 = q.submit(tiny_input(), {.client_id = 7});
  auto f3 = q.submit(tiny_input(), {.client_id = 7});  // bucket empty
  auto f_other = q.submit(tiny_input(), {.client_id = 8});  // unlimited
  EXPECT_EQ(settle_kind(f3), 3);
  EXPECT_EQ(q.throttled(), 1u);
  EXPECT_EQ(q.size(), 3u);
  q.close();
  serve::Request r;
  while (q.pop(r)) r.promise.set_value(dummy_result());
  EXPECT_EQ(settle_kind(f1), 0);
  EXPECT_EQ(settle_kind(f2), 0);
  EXPECT_EQ(settle_kind(f_other), 0);
}

TEST(Quota, CostIsRowsAndRetryAfterIsEstimated) {
  serve::AdmissionConfig cfg;
  cfg.client_quota[1] = {.rate = 1.0, .burst = 4.0};
  serve::RequestQueue q(cfg);
  auto f1 = q.submit(tiny_input(4), {.client_id = 1});  // drains the bucket
  auto f2 = q.submit(tiny_input(4), {.client_id = 1});
  try {
    (void)f2.get();
    FAIL() << "second 4-row submission should have been throttled";
  } catch (const serve::ThrottledError& e) {
    // ~4 rows short at 1 row/s: the estimate is close to 4 seconds.
    EXPECT_GT(e.retry_after_s(), 3.0);
    EXPECT_LT(e.retry_after_s(), 5.0);
  }
  q.close();
  serve::Request r;
  while (q.pop(r)) r.promise.set_value(dummy_result());
  EXPECT_EQ(settle_kind(f1), 0);
}

TEST(Quota, BucketRefillsAtTheConfiguredRate) {
  serve::AdmissionConfig cfg;
  cfg.client_quota[1] = {.rate = 50.0, .burst = 1.0};  // 20ms per row
  serve::RequestQueue q(cfg);
  auto f1 = q.submit(tiny_input(), {.client_id = 1});
  auto f2 = q.submit(tiny_input(), {.client_id = 1});  // back to back
  EXPECT_EQ(settle_kind(f2), 3);
  std::this_thread::sleep_for(50ms);  // > 20ms: one row of credit back
  auto f3 = q.submit(tiny_input(), {.client_id = 1});
  EXPECT_EQ(q.throttled(), 1u);
  q.close();
  serve::Request r;
  while (q.pop(r)) r.promise.set_value(dummy_result());
  EXPECT_EQ(settle_kind(f1), 0);
  EXPECT_EQ(settle_kind(f3), 0);
}

TEST(Quota, OversizedRequestIsPermanentlyThrottledNotRetryBaited) {
  serve::AdmissionConfig cfg;
  cfg.client_quota[1] = {.rate = 1.0, .burst = 2.0};
  serve::RequestQueue q(cfg);
  auto f = q.submit(tiny_input(4), {.client_id = 1});  // can never fit
  try {
    (void)f.get();
    FAIL() << "a request larger than burst must be refused";
  } catch (const serve::ThrottledError& e) {
    EXPECT_TRUE(std::isinf(e.retry_after_s()))
        << "finite retry-after would send the client into an endless loop";
  }
  // The refusal cost nothing: a burst-sized request still goes through.
  auto f2 = q.submit(tiny_input(2), {.client_id = 1});
  q.close();
  serve::Request r;
  while (q.pop(r)) r.promise.set_value(dummy_result());
  EXPECT_EQ(settle_kind(f2), 0);
}

TEST(Quota, CapacityRejectionRefundsTheTenantsTokens) {
  serve::AdmissionConfig cfg;
  cfg.policy = serve::AdmissionPolicy::kReject;
  cfg.capacity = 1;
  cfg.client_quota[1] = {.rate = 0.001, .burst = 2.0};  // ~never refills
  serve::RequestQueue q(cfg);
  auto f1 = q.submit(tiny_input(), {.client_id = 1});  // admitted
  auto f2 = q.submit(tiny_input(), {.client_id = 1});  // capacity-rejected
  EXPECT_EQ(settle_kind(f2), 1);
  serve::Request r;
  ASSERT_TRUE(q.pop(r));
  r.promise.set_value(dummy_result());
  // Without the refund the bucket would be empty now (two tokens charged
  // for one admitted request); the tenant must still hold one.
  auto f3 = q.submit(tiny_input(), {.client_id = 1});
  q.close();
  while (q.pop(r)) r.promise.set_value(dummy_result());
  EXPECT_EQ(settle_kind(f1), 0);
  EXPECT_EQ(settle_kind(f3), 0);
  EXPECT_EQ(q.throttled(), 0u);
}

TEST(Quota, ThrottledFlooderNeverStarvesCompliantTenants) {
  // Randomized sweep: a flooder with a tight bucket hammers the queue
  // while compliant tenants trickle. Every compliant submission must be
  // served; the flooder's refusals are all typed ThrottledError; every
  // future settles exactly once.
  for (uint64_t seed : {21u, 22u, 23u}) {
    serve::AdmissionConfig cfg;
    cfg.client_quota[1] = {.rate = 200.0, .burst = 4.0};
    serve::RequestQueue q(cfg);
    std::thread consumer([&q] {
      serve::Request r;
      while (q.pop(r)) r.promise.set_value(dummy_result());
    });

    constexpr size_t kFlood = 100, kCompliantEach = 25;
    std::vector<std::future<sc::InferenceResult>> flood, compliant;
    std::thread flooder([&] {
      for (size_t k = 0; k < kFlood; ++k)
        flood.push_back(q.submit(tiny_input(), {.client_id = 1}));
    });
    std::vector<std::thread> tenants;
    std::vector<std::vector<std::future<sc::InferenceResult>>> per(2);
    for (size_t t = 0; t < 2; ++t)
      tenants.emplace_back([&, t] {
        std::mt19937_64 gen(seed + t);
        std::uniform_int_distribution<int> jitter(0, 120);
        for (size_t k = 0; k < kCompliantEach; ++k) {
          per[t].push_back(q.submit(tiny_input(), {.client_id = 2 + t}));
          std::this_thread::sleep_for(std::chrono::microseconds(jitter(gen)));
        }
      });
    flooder.join();
    for (auto& t : tenants) t.join();
    q.close();
    consumer.join();

    int64_t flood_values = 0, flood_throttled = 0;
    for (auto& f : flood) switch (settle_kind(f)) {
        case 0: ++flood_values; break;
        case 3: ++flood_throttled; break;
        default: ADD_FAILURE() << "flooder saw an unexpected settlement";
      }
    EXPECT_EQ(flood_values + flood_throttled,
              static_cast<int64_t>(kFlood));
    EXPECT_GT(flood_throttled, 0);
    for (auto& futs : per)
      for (auto& f : futs)
        EXPECT_EQ(settle_kind(f), 0)
            << "a compliant tenant was not served (seed " << seed << ")";
    EXPECT_EQ(q.throttled(), static_cast<uint64_t>(flood_throttled));
  }
}

// ------------------------------------------------------ server-level SLO

struct SloRig {
  std::vector<std::unique_ptr<core::MtlSplitModel>> models;

  explicit SloRig(size_t replicas = 1, uint64_t seed = 1) {
    for (size_t r = 0; r < replicas; ++r) {
      Rng rng(seed + 100 * r);
      models.push_back(core::make_mtl_model(factory_cfg(),
                                            {{"a", 4}, {"b", 3}}, rng));
      models.back()->set_training(false);
      if (r > 0) core::copy_model_state(*models.back(), *models[0]);
    }
  }

  static core::ModelFactoryConfig factory_cfg() {
    core::ModelFactoryConfig cfg;
    cfg.backbone = models::BackboneKind::kMobileNetV3;
    cfg.image_shape = {3, 16, 16};
    return cfg;
  }

  /// Factory for autoscaler minting: structurally identical, distinct
  /// init (the server overwrites the weights via copy_model_state).
  static std::unique_ptr<core::MtlSplitModel> mint() {
    Rng rng(999);
    return core::make_mtl_model(factory_cfg(), {{"a", 4}, {"b", 3}}, rng);
  }

  Tensor input(uint64_t seed) const {
    Rng rng(seed);
    Tensor t({1, 3, 16, 16});
    rng.fill_uniform(t, 0.0f, 1.0f);
    return t;
  }
};

TEST(ServerDeadline, ExpiredRequestsNeverReachTheModel) {
  SloRig rig;
  sc::Channel link({.bandwidth_bps = 1e9});
  serve::ScServer server({rig.models[0].get()}, link, sc::jetson_nano(),
                         sc::rtx3090_server(),
                         {.batching = {.max_batch_size = 4,
                                       .max_wait_us = 2000}});
  // Pre-expired: each settles with a typed error from some phase and is
  // never dispatched.
  std::vector<std::future<sc::InferenceResult>> dead;
  for (uint64_t i = 0; i < 8; ++i)
    dead.push_back(
        server.submit(rig.input(100 + i),
                      {.deadline = std::chrono::steady_clock::now() - 1ms}));
  for (auto& f : dead) {
    const int kind = settle_kind(f);
    EXPECT_TRUE(kind >= 4 && kind <= 6) << "settlement kind " << kind;
  }
  // The server stays healthy: live requests complete bitwise-correct.
  SloRig ref_rig;
  core::copy_model_state(*ref_rig.models[0], *rig.models[0]);
  sc::Channel ref_ch({.bandwidth_bps = 1e9});
  sc::ScDeployment ref(*ref_rig.models[0], ref_ch, sc::jetson_nano(),
                       sc::rtx3090_server());
  for (uint64_t i = 0; i < 4; ++i) {
    const Tensor x = rig.input(200 + i);
    const sc::InferenceResult got = server.submit(x.clone()).get();
    const sc::InferenceResult want = ref.infer(x);
    for (size_t j = 0; j < want.logits.size(); ++j)
      EXPECT_TRUE(got.logits[j].equals(want.logits[j]));
  }
  server.shutdown();
  const serve::ServeStats s = server.stats();
  EXPECT_EQ(s.expired, 8);
  EXPECT_EQ(s.completed, 4);
  EXPECT_EQ(s.failed, 0);
}

TEST(Autoscale, GrowsUnderBurstNeverPastMaxAndShrinksWhenIdle) {
  SloRig rig;
  sc::Channel link({.bandwidth_bps = 1e9});
  serve::ServeConfig cfg;
  cfg.batching = {.max_batch_size = 4, .max_wait_us = 200};
  cfg.autoscale = {.enabled = true,
                   .min_replicas = 1,
                   .max_replicas = 3,
                   .scale_up_backlog = 2.0,
                   .scale_down_backlog = 0.5,
                   .interval_us = 5000,
                   .hysteresis_ticks = 2,
                   .make_replica = &SloRig::mint};
  serve::ScServer server({rig.models[0].get()}, link, sc::jetson_nano(),
                         sc::rtx3090_server(), cfg);
  EXPECT_EQ(server.num_workers(), 1u);

  // Burst: enough open-loop work to hold the backlog over the scale-up
  // threshold for several controller ticks.
  std::vector<std::future<sc::InferenceResult>> futs;
  std::vector<Tensor> inputs;
  for (uint64_t i = 0; i < 64; ++i) {
    inputs.push_back(rig.input(500 + i));
    futs.push_back(server.submit(inputs.back().clone(), {.client_id = i}));
  }
  size_t max_seen = 1;
  for (int t = 0; t < 400; ++t) {  // sample while the burst drains
    max_seen = std::max(max_seen, server.num_workers());
    ASSERT_LE(server.num_workers(), 3u) << "autoscaler exceeded max_replicas";
    std::this_thread::sleep_for(1ms);
    if (t > 20 && max_seen > 1) break;
  }
  // Every burst request completes, bitwise identical to sequential infer
  // — whichever (possibly minted) replica served it.
  SloRig ref_rig;
  core::copy_model_state(*ref_rig.models[0], *rig.models[0]);
  sc::Channel ref_ch({.bandwidth_bps = 1e9});
  sc::ScDeployment ref(*ref_rig.models[0], ref_ch, sc::jetson_nano(),
                       sc::rtx3090_server());
  for (size_t i = 0; i < futs.size(); ++i) {
    const sc::InferenceResult got = futs[i].get();
    const sc::InferenceResult want = ref.infer(inputs[i]);
    for (size_t j = 0; j < want.logits.size(); ++j)
      EXPECT_TRUE(got.logits[j].equals(want.logits[j]))
          << "autoscaled request " << i << " diverged";
  }
  EXPECT_GT(max_seen, 1u) << "burst never triggered a scale-up";

  // Idle: the controller retires extras back toward min_replicas.
  bool shrank = false;
  for (int t = 0; t < 2000 && !shrank; ++t) {
    shrank = server.num_workers() == 1;
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(shrank) << "autoscaler never scaled back down to min";

  server.shutdown();
  const serve::ServeStats s = server.stats();
  EXPECT_GE(s.scale_ups, 1);
  EXPECT_GE(s.scale_downs, 1);
  EXPECT_EQ(s.completed, 64);
  EXPECT_EQ(s.failed, 0);
  ASSERT_EQ(s.shard_replicas.size(), 1u);
}

TEST(WorkSteal, IdleShardDrainsBackloggedSibling) {
  // Two single-replica shards; hash routing pins every request of one
  // client to one shard, so the other shard's worker is idle unless it
  // steals.
  SloRig rig(/*replicas=*/2);
  SloRig ref_rig;
  core::copy_model_state(*ref_rig.models[0], *rig.models[0]);
  sc::Channel ref_ch({.bandwidth_bps = 1e9});
  sc::ScDeployment ref(*ref_rig.models[0], ref_ch, sc::jetson_nano(),
                       sc::rtx3090_server());

  sc::Channel link({.bandwidth_bps = 1e9});
  serve::ServeConfig cfg;
  cfg.batching = {.max_batch_size = 1, .max_wait_us = 0};
  cfg.replicas_per_shard = 1;
  cfg.sharding = serve::ShardingPolicy::kHashClient;
  cfg.work_stealing = true;
  cfg.idle_poll_us = 200;
  serve::ScServer server({rig.models[0].get(), rig.models[1].get()}, link,
                         sc::jetson_nano(), sc::rtx3090_server(), cfg);
  ASSERT_EQ(server.num_shards(), 2u);

  std::vector<Tensor> inputs;
  std::vector<std::future<sc::InferenceResult>> futs;
  for (uint64_t i = 0; i < 40; ++i) {
    inputs.push_back(rig.input(700 + i));
    futs.push_back(server.submit(inputs.back().clone(), {.client_id = 42}));
  }
  for (size_t i = 0; i < futs.size(); ++i) {
    const sc::InferenceResult got = futs[i].get();
    const sc::InferenceResult want = ref.infer(inputs[i]);
    for (size_t j = 0; j < want.logits.size(); ++j)
      EXPECT_TRUE(got.logits[j].equals(want.logits[j]))
          << "stolen-or-owned request " << i << " diverged";
  }
  server.shutdown();
  const serve::ServeStats s = server.stats();
  EXPECT_EQ(s.completed, 40);
  EXPECT_EQ(s.failed, 0);
  EXPECT_GT(s.stolen, 0) << "the idle sibling never stole";
}

TEST(WorkSteal, DisabledKeepsEveryRequestOnItsShard) {
  SloRig rig(/*replicas=*/2);
  sc::Channel link({.bandwidth_bps = 1e9});
  serve::ServeConfig cfg;
  cfg.batching = {.max_batch_size = 2, .max_wait_us = 200};
  cfg.replicas_per_shard = 1;
  cfg.sharding = serve::ShardingPolicy::kHashClient;
  cfg.work_stealing = false;
  serve::ScServer server({rig.models[0].get(), rig.models[1].get()}, link,
                         sc::jetson_nano(), sc::rtx3090_server(), cfg);
  std::vector<std::future<sc::InferenceResult>> futs;
  for (uint64_t i = 0; i < 12; ++i)
    futs.push_back(server.submit(rig.input(800 + i), {.client_id = 42}));
  for (auto& f : futs) EXPECT_EQ(settle_kind(f), 0);
  server.shutdown();
  const serve::ServeStats s = server.stats();
  EXPECT_EQ(s.completed, 12);
  EXPECT_EQ(s.stolen, 0);
}

TEST(ServerQuota, ThrottledTenantGetsTypedErrorOthersUnaffected) {
  SloRig rig;
  sc::Channel link({.bandwidth_bps = 1e9});
  serve::ServeConfig cfg;
  cfg.batching = {.max_batch_size = 4, .max_wait_us = 500};
  cfg.admission.client_quota[9] = {.rate = 0.001, .burst = 3.0};
  serve::ScServer server({rig.models[0].get()}, link, sc::jetson_nano(),
                         sc::rtx3090_server(), cfg);
  int64_t values = 0, throttled = 0;
  std::vector<std::future<sc::InferenceResult>> futs;
  for (uint64_t i = 0; i < 10; ++i)
    futs.push_back(server.submit(rig.input(900 + i), {.client_id = 9}));
  for (uint64_t i = 0; i < 6; ++i)
    futs.push_back(server.submit(rig.input(950 + i), {.client_id = 10}));
  for (auto& f : futs) switch (settle_kind(f)) {
      case 0: ++values; break;
      case 3: ++throttled; break;
      default: ADD_FAILURE() << "unexpected settlement"; break;
    }
  server.shutdown();
  EXPECT_EQ(values, 3 + 6);      // burst-of-3 for tenant 9, all of tenant 10
  EXPECT_EQ(throttled, 7);
  const serve::ServeStats s = server.stats();
  EXPECT_EQ(s.throttled, 7);
  EXPECT_EQ(s.completed, 9);
}

// ------------------------------------------------- SLO feedback control

/// A drained latency window of @p n samples all at @p value seconds.
telemetry::HistSnapshot slo_window(int n, double value) {
  telemetry::Histogram h;
  for (int i = 0; i < n; ++i) h.observe(value);
  return h.drain();
}

TEST(SloControl, AimdShrinksUnderViolationAndRecoversUnderComfort) {
  telemetry::Registry reg;
  serve::SloConfig cfg;
  cfg.enabled = true;
  cfg.target_p99_s = 0.1;
  cfg.min_window_samples = 4;
  cfg.min_depth = 2;
  cfg.shrink = 0.5;
  cfg.grow_margin = 0.7;
  cfg.min_scale_up_backlog = 1.0;
  serve::SloController c(cfg, /*initial_depth=*/64,
                         /*base_scale_up_backlog=*/8.0, reg);
  EXPECT_EQ(c.depth_cap(), 64u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("serve/slo/depth_cap"), 64.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("serve/slo/target_p99_s"), 0.1);

  // A thin window (fewer completions than min_window_samples) carries no
  // signal: the tick counts but the actuators stay put.
  const auto idle = c.tick(slo_window(2, 10.0));
  EXPECT_FALSE(idle.acted);
  EXPECT_EQ(c.depth_cap(), 64u);
  EXPECT_EQ(reg.counter_value("serve/slo/ticks"), 1);
  EXPECT_EQ(reg.counter_value("serve/slo/violations"), 0);

  // Sustained violation: multiplicative decrease 64 -> 32 -> ... -> 2,
  // floored at min_depth; the autoscale threshold halves alongside and
  // floors at min_scale_up_backlog.
  const size_t caps[] = {32, 16, 8, 4, 2, 2};
  const double backlogs[] = {4.0, 2.0, 1.0, 1.0, 1.0, 1.0};
  for (size_t i = 0; i < 6; ++i) {
    const auto d = c.tick(slo_window(8, 0.5));
    EXPECT_TRUE(d.acted);
    EXPECT_EQ(d.depth_cap, caps[i]) << "violation tick " << i;
    EXPECT_DOUBLE_EQ(d.scale_up_backlog, backlogs[i]);
  }
  EXPECT_EQ(reg.counter_value("serve/slo/violations"), 6);
  EXPECT_DOUBLE_EQ(reg.gauge_value("serve/slo/depth_cap"), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("serve/slo/p99_window_s"), 0.5);
  EXPECT_DOUBLE_EQ(reg.gauge_value("serve/slo/slack_s"), 0.1 - 0.5);

  // The dead zone (inside the SLO but above the comfort margin) holds the
  // actuators still — no oscillation against the boundary.
  const auto hold = c.tick(slo_window(8, 0.08));
  EXPECT_TRUE(hold.acted);
  EXPECT_EQ(hold.depth_cap, 2u);

  // Comfort: additive growth all the way back to the initial depth and
  // the configured backlog threshold, never past either.
  for (int i = 0; i < 100; ++i) (void)c.tick(slo_window(8, 0.01));
  EXPECT_EQ(c.depth_cap(), 64u);
  EXPECT_DOUBLE_EQ(c.scale_up_backlog(), 8.0);
  EXPECT_EQ(reg.counter_value("serve/slo/violations"), 6);
}

TEST(SloControl, BacklogRecoveryIsAdditiveMonotoneAndBounded) {
  // Regression: the recovery path used to restore scale_up_backlog_ by
  // dividing with cfg.shrink — a multiplicative increase that jumped
  // 4.0 -> 8.0 in one tick and re-oscillated right at the SLO boundary.
  // The AIMD contract (DESIGN.md §11) wants additive recovery, stepping
  // by max(min_scale_up_backlog, x/8) like the depth path.
  telemetry::Registry reg;
  serve::SloConfig cfg;
  cfg.enabled = true;
  cfg.target_p99_s = 0.1;
  cfg.min_window_samples = 4;
  cfg.min_depth = 2;
  cfg.shrink = 0.5;
  cfg.grow_margin = 0.7;
  cfg.min_scale_up_backlog = 1.0;
  serve::SloController c(cfg, /*initial_depth=*/64,
                         /*base_scale_up_backlog=*/8.0, reg);

  // One violation: 8.0 -> 4.0 (multiplicative decrease).
  const auto shrunk = c.tick(slo_window(8, 0.5));
  ASSERT_DOUBLE_EQ(shrunk.scale_up_backlog, 4.0);

  // Recovery must climb back in additive steps — with the bug the very
  // first comfort tick restored 8.0.
  double prev = 4.0;
  std::vector<double> seen;
  for (int i = 0; i < 8; ++i) {
    const auto d = c.tick(slo_window(8, 0.01));
    ASSERT_TRUE(d.acted);
    EXPECT_GE(d.scale_up_backlog, prev) << "recovery tick " << i
                                        << " was not monotone";
    EXPECT_LE(d.scale_up_backlog,
              prev + std::max(cfg.min_scale_up_backlog, prev / 8.0) + 1e-12)
        << "recovery tick " << i << " stepped more than additively";
    EXPECT_LE(d.scale_up_backlog, 8.0) << "recovery overshot the base";
    prev = d.scale_up_backlog;
    seen.push_back(d.scale_up_backlog);
  }
  // Exact trajectory with these constants: +1 per tick, clamped at base.
  const std::vector<double> want = {5.0, 6.0, 7.0, 8.0, 8.0, 8.0, 8.0, 8.0};
  ASSERT_EQ(seen.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i)
    EXPECT_DOUBLE_EQ(seen[i], want[i]) << "recovery tick " << i;
  EXPECT_NE(seen[0], 8.0) << "first recovery tick restored the base in one "
                             "jump (multiplicative bug)";
}

TEST(SloControl, SetCapacityShrinkRacingBlockedSubmittersStaysLive) {
  // The SLO controller shrinks queue capacity below the current depth
  // while Block-policy submitters are parked in the admission wait.
  // Contract: no blocked producer may deadlock or be stranded past its
  // own deadline — it either gets admitted (capacity re-grows / a slot
  // frees) or settles kAdmission at the deadline. TSan-clean by
  // construction: every cross-thread touch goes through the queue's own
  // mutex or an atomic.
  serve::RequestQueue q(serve::AdmissionConfig{
      .policy = serve::AdmissionPolicy::kBlock, .capacity = 8});
  constexpr int kProducers = 4, kPerProducer = 40;
  constexpr auto kTtl = 300ms;

  std::atomic<bool> stop_thrash{false};
  std::thread thrasher([&] {
    size_t i = 0;
    while (!stop_thrash.load(std::memory_order_acquire)) {
      q.set_capacity(1 + (i++ % 8));  // repeatedly dips below the depth
      std::this_thread::sleep_for(100us);
    }
  });
  std::thread consumer([&] {  // slow: keeps the queue saturated
    serve::Request r;
    while (q.pop(r)) {
      std::this_thread::sleep_for(300us);
      r.promise.set_value(dummy_result());
    }
  });

  std::vector<std::vector<std::future<sc::InferenceResult>>> futs(kProducers);
  std::vector<std::thread> producers;
  std::atomic<int64_t> worst_block_us{0};
  for (int t = 0; t < kProducers; ++t)
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto before = std::chrono::steady_clock::now();
        futs[t].push_back(
            q.submit(tiny_input(), {.client_id = static_cast<uint64_t>(t),
                                    .ttl = kTtl}));
        const auto blocked =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - before)
                .count();
        int64_t cur = worst_block_us.load(std::memory_order_relaxed);
        while (blocked > cur &&
               !worst_block_us.compare_exchange_weak(
                   cur, blocked, std::memory_order_relaxed)) {
        }
      }
    });
  for (auto& t : producers) t.join();
  stop_thrash.store(true, std::memory_order_release);
  thrasher.join();
  q.close();
  consumer.join();

  // Liveness: the longest a submitter ever blocked is bounded by its own
  // deadline (plus generous scheduling slack), not by the thrash pattern.
  EXPECT_LT(worst_block_us.load(),
            std::chrono::duration_cast<std::chrono::microseconds>(kTtl).count()
                + 2000000)
      << "a Block submitter was stranded past its deadline";
  // Exactly-once settlement, only the two legal outcomes.
  int64_t values = 0, admission_expired = 0;
  for (auto& per : futs)
    for (auto& f : per) switch (settle_kind(f)) {
        case 0: ++values; break;
        case 4: ++admission_expired; break;
        default:
          ADD_FAILURE() << "unexpected settlement under capacity thrash";
      }
  EXPECT_EQ(values + admission_expired,
            static_cast<int64_t>(kProducers * kPerProducer));
  EXPECT_GT(values, 0);
}

TEST(SloControl, CtorValidatesConfig) {
  telemetry::Registry reg;
  serve::SloConfig ok;
  ok.target_p99_s = 0.1;
  auto with = [&](auto mutate) {
    serve::SloConfig c = ok;
    mutate(c);
    return c;
  };
  EXPECT_NO_THROW(serve::SloController(ok, 8, 4.0, reg));
  EXPECT_THROW(
      serve::SloController(with([](auto& c) { c.target_p99_s = 0.0; }), 8,
                           4.0, reg),
      std::invalid_argument);
  EXPECT_THROW(serve::SloController(with([](auto& c) { c.shrink = 1.0; }), 8,
                                    4.0, reg),
               std::invalid_argument);
  EXPECT_THROW(serve::SloController(with([](auto& c) { c.min_depth = 0; }), 8,
                                    4.0, reg),
               std::invalid_argument);
  EXPECT_THROW(
      serve::SloController(
          with([](auto& c) { c.min_depth = 9, c.max_depth = 4; }), 8, 4.0,
          reg),
      std::invalid_argument);
  EXPECT_THROW(serve::SloController(ok, 0, 4.0, reg), std::invalid_argument);
}

TEST(SloControl, SetCapacityIsALiveActuator) {
  // The controller's queue-side actuator: capacity drops take effect on
  // the very next admission decision.
  serve::RequestQueue q(serve::AdmissionConfig{
      .policy = serve::AdmissionPolicy::kReject, .capacity = 4});
  auto f1 = q.submit(tiny_input());
  auto f2 = q.submit(tiny_input());
  q.set_capacity(1);
  auto f3 = q.submit(tiny_input());  // over the new cap
  EXPECT_EQ(settle_kind(f3), 1);
  EXPECT_EQ(q.rejected(), 1u);
  q.set_capacity(4);
  auto f4 = q.submit(tiny_input());
  q.close();
  serve::Request r;
  while (q.pop(r)) r.promise.set_value(dummy_result());
  EXPECT_EQ(settle_kind(f1), 0);
  EXPECT_EQ(settle_kind(f2), 0);
  EXPECT_EQ(settle_kind(f4), 0);
}

TEST(Routing, HashPinnedTenantFallsBackWhenItsShardDrainsToZeroWorkers) {
  // Regression: splitmix64(client_id) % num_shards used to pin a tenant
  // to its hash shard unconditionally — including a shard whose every
  // worker slot had been retired mid-scale-down, stranding the tenant's
  // requests in a queue nobody pops. The router must fall back to the
  // least-loaded *live* shard the moment the pinned shard has no active
  // worker.
  SloRig rig(2);
  sc::Channel link({.bandwidth_bps = 1e9});
  serve::ServeConfig cfg;
  cfg.batching = {.max_batch_size = 1, .max_wait_us = 0};
  cfg.replicas_per_shard = 1;  // two shards, one worker each
  cfg.sharding = serve::ShardingPolicy::kHashClient;
  cfg.work_stealing = false;  // nobody rescues a stranded queue
  serve::ScServer server({rig.models[0].get(), rig.models[1].get()}, link,
                         sc::jetson_nano(), sc::rtx3090_server(), cfg);
  ASSERT_EQ(server.num_shards(), 2u);

  // Drain shard 0 to zero active workers (allowed below the autoscaler's
  // floor — this is the fleet/chaos hook, not a policy decision).
  ASSERT_TRUE(server.retire_replica(0));
  EXPECT_FALSE(server.retire_replica(0)) << "no second worker to retire";

  // Every tenant — including the ones that hash onto shard 0 — must be
  // served, bitwise identical to a sequential reference.
  SloRig ref_rig;
  core::copy_model_state(*ref_rig.models[0], *rig.models[0]);
  sc::Channel ref_ch({.bandwidth_bps = 1e9});
  sc::ScDeployment ref(*ref_rig.models[0], ref_ch, sc::jetson_nano(),
                       sc::rtx3090_server());
  std::vector<Tensor> inputs;
  std::vector<std::future<sc::InferenceResult>> futs;
  for (uint64_t c = 0; c < 16; ++c) {
    inputs.push_back(rig.input(900 + c));
    futs.push_back(server.submit(inputs[c].clone(), {.client_id = c}));
  }
  for (size_t i = 0; i < futs.size(); ++i) {
    ASSERT_EQ(futs[i].wait_for(20s), std::future_status::ready)
        << "request " << i << " stranded on a dead shard";
    const sc::InferenceResult got = futs[i].get();
    const sc::InferenceResult want = ref.infer(inputs[i]);
    ASSERT_EQ(got.logits.size(), want.logits.size());
    for (size_t j = 0; j < want.logits.size(); ++j)
      EXPECT_TRUE(got.logits[j].equals(want.logits[j]));
  }
  server.shutdown();
  const serve::ServeStats s = server.stats();
  EXPECT_EQ(s.completed, 16);
  EXPECT_EQ(s.failed, 0);

  // And the rebuild hook restores the drained shard: the replica lands
  // on shard 0 (fewest active workers).
  SloRig rig2(2);
  sc::Channel link2({.bandwidth_bps = 1e9});
  serve::ScServer server2({rig2.models[0].get(), rig2.models[1].get()}, link2,
                          sc::jetson_nano(), sc::rtx3090_server(), cfg);
  ASSERT_TRUE(server2.retire_replica(0));
  EXPECT_EQ(server2.add_replicas(1, &SloRig::mint), 1u);
  EXPECT_EQ(server2.num_workers(), 2u);
  auto f = server2.submit(rig2.input(950), {.client_id = 3});
  ASSERT_EQ(f.wait_for(20s), std::future_status::ready);
  server2.shutdown();
}

TEST(ServerSlo, ControllerReactsToViolationsEndToEnd) {
  // An impossible SLO (1µs p99) makes every completion a violation: the
  // controller must shrink the depth cap off its configured value and
  // publish its state into the server's telemetry tree.
  SloRig rig;
  sc::Channel link({.bandwidth_bps = 1e9});
  serve::ServeConfig cfg;
  cfg.batching = {.max_batch_size = 4, .max_wait_us = 200};
  cfg.admission.policy = serve::AdmissionPolicy::kReject;
  cfg.admission.capacity = 32;
  cfg.slo.enabled = true;
  cfg.slo.target_p99_s = 1e-6;
  cfg.slo.interval_us = 2000;
  cfg.slo.min_window_samples = 4;
  cfg.slo.min_depth = 2;
  serve::ScServer server({rig.models[0].get()}, link, sc::jetson_nano(),
                         sc::rtx3090_server(), cfg);
  std::vector<std::future<sc::InferenceResult>> futs;
  for (int round = 0; round < 30; ++round) {
    for (uint64_t i = 0; i < 8; ++i)
      futs.push_back(server.submit(rig.input(round * 8 + i), {.client_id = i}));
    std::this_thread::sleep_for(5ms);
  }
  for (auto& f : futs) (void)settle_kind(f);  // settle everything; kinds vary
  server.shutdown();

  const telemetry::Registry& tree = server.telemetry_tree();
  EXPECT_GT(tree.counter_value("serve/slo/ticks"), 0);
  EXPECT_GT(tree.counter_value("serve/slo/violations"), 0);
  const double cap = tree.gauge_value("serve/slo/depth_cap");
  EXPECT_LT(cap, 32.0) << "controller never shrank the depth cap";
  EXPECT_GE(cap, 2.0);
  // The feedback loop is observable through the JSON exporter too.
  EXPECT_NE(server.telemetry_json().find("\"slo\":{"), std::string::npos);
  const serve::ServeStats s = server.stats();
  EXPECT_GT(s.completed, 0);
}

TEST(ServerSlo, EnabledRequiresBoundedQueue) {
  SloRig rig;
  sc::Channel link({.bandwidth_bps = 1e9});
  serve::ServeConfig cfg;
  cfg.slo.enabled = true;
  cfg.slo.target_p99_s = 0.5;
  // admission.capacity defaults to unbounded: the depth-cap actuator has
  // nothing to actuate, which must be a loud config error.
  EXPECT_THROW(serve::ScServer({rig.models[0].get()}, link, sc::jetson_nano(),
                               sc::rtx3090_server(), cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtlsplit
