// Unit + property tests for the tensor op kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace mtlsplit {
namespace {

TEST(Elementwise, BasicArithmetic) {
  const Tensor a = Tensor::from_values({1, 2, 3});
  const Tensor b = Tensor::from_values({4, 5, 6});
  EXPECT_TRUE(ops::add(a, b).equals(Tensor::from_values({5, 7, 9})));
  EXPECT_TRUE(ops::sub(b, a).equals(Tensor::from_values({3, 3, 3})));
  EXPECT_TRUE(ops::mul(a, b).equals(Tensor::from_values({4, 10, 18})));
  EXPECT_TRUE(ops::div(b, a).allclose(Tensor::from_values({4, 2.5f, 2})));
}

TEST(Elementwise, ShapeMismatchThrows) {
  const Tensor a({2, 3});
  const Tensor b({3, 2});
  EXPECT_THROW(ops::add(a, b), std::invalid_argument);
  Tensor c({2, 3});
  EXPECT_THROW(ops::add_(c, b), std::invalid_argument);
  EXPECT_THROW(ops::axpy_(c, 1.0f, b), std::invalid_argument);
}

TEST(Elementwise, ScalarOpsAndInPlace) {
  Tensor a = Tensor::from_values({1, -2, 3});
  EXPECT_TRUE(ops::add_scalar(a, 1.0f).equals(Tensor::from_values({2, -1, 4})));
  EXPECT_TRUE(ops::mul_scalar(a, -2.0f).equals(Tensor::from_values({-2, 4, -6})));
  ops::scale_(a, 10.0f);
  EXPECT_TRUE(a.equals(Tensor::from_values({10, -20, 30})));
  Tensor y = Tensor::from_values({1, 1, 1});
  ops::axpy_(y, 0.5f, a);
  EXPECT_TRUE(y.allclose(Tensor::from_values({6, -9, 16})));
}

TEST(Elementwise, UnaryFunctions) {
  const Tensor a = Tensor::from_values({1.0f, 4.0f});
  EXPECT_TRUE(ops::sqrt(a).allclose(Tensor::from_values({1.0f, 2.0f})));
  EXPECT_TRUE(ops::neg(a).equals(Tensor::from_values({-1.0f, -4.0f})));
  EXPECT_TRUE(ops::abs(ops::neg(a)).equals(a));
  EXPECT_TRUE(
      ops::log(ops::exp(a)).allclose(a, 1e-5f));
  EXPECT_TRUE(ops::clamp(Tensor::from_values({-5, 0.5f, 5}), 0, 1)
                  .equals(Tensor::from_values({0, 0.5f, 1})));
  EXPECT_THROW(ops::clamp(a, 2.0f, 1.0f), std::invalid_argument);
}

TEST(Reductions, SumMeanMinMax) {
  const Tensor a = Tensor::from_values({1, -2, 3, 4});
  EXPECT_FLOAT_EQ(ops::sum(a), 6.0f);
  EXPECT_FLOAT_EQ(ops::mean(a), 1.5f);
  EXPECT_FLOAT_EQ(ops::max(a), 4.0f);
  EXPECT_FLOAT_EQ(ops::min(a), -2.0f);
  EXPECT_FLOAT_EQ(ops::sq_norm(a), 1 + 4 + 9 + 16);
  EXPECT_THROW(ops::mean(Tensor({0})), std::invalid_argument);
  EXPECT_THROW(ops::max(Tensor({0})), std::invalid_argument);
}

TEST(Reductions, ArgmaxRows) {
  const Tensor a({2, 3}, std::vector<float>{0.1f, 0.9f, 0.2f,  //
                                            5.0f, 1.0f, 4.0f});
  const auto idx = ops::argmax_rows(a);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
  EXPECT_THROW(ops::argmax_rows(Tensor({3})), std::invalid_argument);
}

TEST(Reductions, SumRows) {
  const Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(ops::sum_rows(a).equals(Tensor::from_values({5, 7, 9})));
}

TEST(MatMul, KnownProduct) {
  const Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  const Tensor c = ops::matmul(a, b);
  EXPECT_TRUE(c.equals(Tensor({2, 2}, std::vector<float>{58, 64, 139, 154})));
}

TEST(MatMul, InnerDimMismatchThrows) {
  EXPECT_THROW(ops::matmul(Tensor({2, 3}), Tensor({2, 3})),
               std::invalid_argument);
  EXPECT_THROW(ops::matmul_tn(Tensor({2, 3}), Tensor({3, 2})),
               std::invalid_argument);
  EXPECT_THROW(ops::matmul_nt(Tensor({2, 3}), Tensor({2, 2})),
               std::invalid_argument);
}

TEST(MatMul, Transpose2d) {
  const Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor t = ops::transpose2d(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.at(2, 1), 6.0f);
  EXPECT_EQ(t.at(0, 1), 4.0f);
}

// Property: matmul_tn(A, B) == matmul(A^T, B) and
// matmul_nt(A, B) == matmul(A, B^T), across random shapes.
class GemmVariants : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmVariants, AgreeWithExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + static_cast<uint64_t>(n));
  Tensor a({m, k});
  Tensor b({k, n});
  rng.fill_uniform(a, -1.0f, 1.0f);
  rng.fill_uniform(b, -1.0f, 1.0f);
  const Tensor c = ops::matmul(a, b);

  // tn: (A^T)^T B with A' = A^T.
  const Tensor at = ops::transpose2d(a);
  EXPECT_TRUE(ops::matmul_tn(at, b).allclose(c, 1e-4f));
  // nt: A (B^T)^T with B' = B^T.
  const Tensor bt = ops::transpose2d(b);
  EXPECT_TRUE(ops::matmul_nt(a, bt).allclose(c, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmVariants,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 1, 7), std::make_tuple(8, 8, 8),
                      std::make_tuple(3, 17, 2), std::make_tuple(16, 5, 11)));

TEST(Softmax, RowsSumToOne) {
  Rng rng(3);
  Tensor a({4, 7});
  rng.fill_uniform(a, -5.0f, 5.0f);
  const Tensor s = ops::softmax_rows(a);
  for (int64_t i = 0; i < 4; ++i) {
    double row = 0.0;
    for (int64_t j = 0; j < 7; ++j) {
      EXPECT_GT(s.at(i, j), 0.0f);
      row += s.at(i, j);
    }
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(Softmax, StableUnderLargeLogits) {
  const Tensor a({1, 3}, std::vector<float>{1000.0f, 1001.0f, 999.0f});
  const Tensor s = ops::softmax_rows(a);
  EXPECT_FALSE(std::isnan(s[0]));
  EXPECT_GT(s[1], s[0]);
  EXPECT_GT(s[0], s[2]);
}

TEST(Softmax, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(4);
  Tensor a({3, 5});
  rng.fill_uniform(a, -3.0f, 3.0f);
  const Tensor ls = ops::log_softmax_rows(a);
  const Tensor s = ops::softmax_rows(a);
  for (int64_t i = 0; i < a.numel(); ++i)
    EXPECT_NEAR(ls[i], std::log(s[i]), 1e-5f);
}

TEST(Softmax, InvariantToRowShift) {
  Rng rng(5);
  Tensor a({2, 4});
  rng.fill_uniform(a, -1.0f, 1.0f);
  const Tensor s1 = ops::softmax_rows(a);
  const Tensor s2 = ops::softmax_rows(ops::add_scalar(a, 13.5f));
  EXPECT_TRUE(s1.allclose(s2, 1e-5f));
}

TEST(AddRowBias, AddsToEveryRow) {
  Tensor a({2, 3}, std::vector<float>{0, 0, 0, 1, 1, 1});
  ops::add_row_bias_(a, Tensor::from_values({1, 2, 3}));
  EXPECT_TRUE(a.equals(Tensor({2, 3}, std::vector<float>{1, 2, 3, 2, 3, 4})));
  Tensor bad = Tensor::from_values({1, 2});
  EXPECT_THROW(ops::add_row_bias_(a, bad), std::invalid_argument);
}

}  // namespace
}  // namespace mtlsplit
