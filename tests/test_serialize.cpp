// Tests for the split-computing wire format.
#include <gtest/gtest.h>

#include <cstring>

#include "tensor/rng.hpp"
#include "tensor/serialize.hpp"

namespace mtlsplit {
namespace {

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") is the classic check value 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const uint8_t*>(s), 9), 0xCBF43926u);
}

TEST(Serialize, Float32RoundTrip) {
  Rng rng(1);
  Tensor t({2, 3, 4});
  rng.fill_normal(t, 0.0f, 2.0f);
  const auto bytes = serialize_tensor(t);
  EXPECT_EQ(static_cast<int64_t>(bytes.size()), wire_size_f32(t.shape()));
  const WireTensor wt = deserialize_tensor(bytes);
  EXPECT_EQ(wt.dtype, WireDtype::kFloat32);
  EXPECT_TRUE(wt.f32.equals(t));
}

TEST(Serialize, Int8RoundTrip) {
  const Shape shape{2, 5};
  std::vector<int8_t> vals = {-128, -1, 0, 1, 127, 5, -5, 50, -50, 100};
  const auto bytes = serialize_int8(shape, vals, 0.5f, -3);
  EXPECT_EQ(static_cast<int64_t>(bytes.size()), wire_size_i8(shape));
  const WireTensor wt = deserialize_tensor(bytes);
  EXPECT_EQ(wt.dtype, WireDtype::kInt8);
  EXPECT_EQ(wt.shape, shape);
  EXPECT_EQ(wt.i8, vals);
  EXPECT_FLOAT_EQ(wt.scale, 0.5f);
  EXPECT_EQ(wt.zero_point, -3);
}

TEST(Serialize, Int8SizeMismatchThrows) {
  EXPECT_THROW(serialize_int8({3}, {1, 2}, 1.0f, 0), std::invalid_argument);
}

TEST(Serialize, CorruptionDetectedByCrc) {
  Tensor t({8}, 1.5f);
  auto bytes = serialize_tensor(t);
  for (size_t pos : {size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    auto corrupted = bytes;
    corrupted[pos] ^= 0x01;
    EXPECT_THROW(deserialize_tensor(corrupted), std::invalid_argument)
        << "flip at byte " << pos << " not detected";
  }
}

TEST(Serialize, TruncationDetected) {
  Tensor t({8}, 1.5f);
  auto bytes = serialize_tensor(t);
  bytes.resize(bytes.size() - 5);
  EXPECT_THROW(deserialize_tensor(bytes), std::invalid_argument);
  EXPECT_THROW(deserialize_tensor(std::vector<uint8_t>{1, 2, 3}),
               std::invalid_argument);
}

TEST(Serialize, EmptyAndScalarShapes) {
  const Tensor scalar({1}, 42.0f);
  const WireTensor wt = deserialize_tensor(serialize_tensor(scalar));
  EXPECT_TRUE(wt.f32.equals(scalar));
}

TEST(Serialize, WireSizeFormulas) {
  // header: 4 magic + 1 dtype + 1 ndim; dims: 8 each; payload; 4 crc.
  EXPECT_EQ(wire_size_f32({2, 3}), 4 + 1 + 1 + 16 + 24 + 4);
  EXPECT_EQ(wire_size_i8({2, 3}), 4 + 1 + 1 + 16 + 4 + 4 + 6 + 4);
}

TEST(Serialize, PayloadSizeMismatchRejected) {
  // Hand-craft a message whose dims disagree with the payload length:
  // serialize a valid one, then patch a dim and fix the CRC.
  Tensor t({4}, 1.0f);
  auto bytes = serialize_tensor(t);
  bytes[6] = 5;  // first dim byte: now claims 5 elements
  // Recompute trailing CRC so only the size check can fire.
  const size_t body = bytes.size() - 4;
  const uint32_t c = crc32(bytes.data(), body);
  std::memcpy(bytes.data() + body, &c, 4);
  EXPECT_THROW(deserialize_tensor(bytes), std::invalid_argument);
}

}  // namespace
}  // namespace mtlsplit
