// Serving statistics: the P² streaming-quantile estimator (accuracy
// against exact percentiles on uniform / lognormal / adversarially sorted
// streams, constant memory), saturating counters, and the bounded
// batch-size histogram (DESIGN.md §8).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <type_traits>

#include "serve/stats.hpp"

namespace mtlsplit {
namespace {

using serve::P2Quantile;
using serve::saturating_add;
using serve::ServeStats;
using serve::StatsCollector;

/// Exact nearest-rank percentile of a sample vector, q in (0, 1).
double exact_quantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(v.size())));
  return v[std::min(v.size() - 1, rank == 0 ? 0 : rank - 1)];
}

void expect_close_quantiles(const std::vector<double>& data,
                            double rel_tol, const char* label) {
  for (const double q : {0.5, 0.95, 0.99}) {
    P2Quantile est(q);
    for (const double x : data) est.add(x);
    const double exact = exact_quantile(data, q);
    // Tolerance scales with the spread of the distribution around the
    // quantile, not its absolute location (robust for skewed streams).
    const double spread = exact_quantile(data, 0.99) -
                          exact_quantile(data, 0.05);
    EXPECT_NEAR(est.value(), exact, rel_tol * spread)
        << label << " q=" << q << " over " << data.size() << " samples";
    EXPECT_EQ(est.count(), static_cast<int64_t>(data.size()));
  }
}

// ---------------------------------------------------------------- P2Quantile

TEST(P2Quantile, ExactForFewerThanFiveSamples) {
  P2Quantile p50(0.5);
  EXPECT_DOUBLE_EQ(p50.value(), 0.0);  // empty
  p50.add(7.0);
  EXPECT_DOUBLE_EQ(p50.value(), 7.0);
  p50.add(1.0);
  p50.add(9.0);  // sorted: 1, 7, 9 -> nearest-rank p50 = 7
  EXPECT_DOUBLE_EQ(p50.value(), 7.0);
  P2Quantile p99(0.99);
  for (const double x : {4.0, 2.0, 8.0, 6.0}) p99.add(x);
  EXPECT_DOUBLE_EQ(p99.value(), 8.0);  // max of the first four
}

TEST(P2Quantile, UniformStreamMatchesExactPercentiles) {
  std::mt19937_64 gen(17);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> data(10000);
  for (double& x : data) x = dist(gen);
  expect_close_quantiles(data, 0.02, "uniform");
}

TEST(P2Quantile, LognormalStreamMatchesExactPercentiles) {
  // Heavy right tail: the regime latency distributions live in.
  std::mt19937_64 gen(29);
  std::lognormal_distribution<double> dist(0.0, 0.75);
  std::vector<double> data(10000);
  for (double& x : data) x = dist(gen);
  expect_close_quantiles(data, 0.05, "lognormal");
}

TEST(P2Quantile, AdversarialSortedStreamsStayWithinTolerance) {
  // Monotone streams are the classic P² stress: every observation lands
  // in an extreme cell, so the markers must chase a moving front.
  std::vector<double> asc(10000);
  for (size_t i = 0; i < asc.size(); ++i)
    asc[i] = static_cast<double>(i) / 1000.0;
  expect_close_quantiles(asc, 0.05, "sorted-ascending");
  std::vector<double> desc(asc.rbegin(), asc.rend());
  expect_close_quantiles(desc, 0.05, "sorted-descending");
}

TEST(P2Quantile, ConstantMemoryWhateverTheStreamLength) {
  // The estimator is a fixed-size value type: no heap, no growth. This is
  // the property that lets ServeStats live in a months-long server.
  static_assert(std::is_trivially_copyable_v<P2Quantile>,
                "P2Quantile must be a flat value type (no heap state)");
  static_assert(sizeof(P2Quantile) <= 5 * 4 * sizeof(double) + 32,
                "P2Quantile must hold five markers, not samples");
  P2Quantile est(0.99);
  std::mt19937_64 gen(5);
  std::exponential_distribution<double> dist(1.0);
  for (int i = 0; i < 200000; ++i) est.add(dist(gen));
  EXPECT_EQ(est.count(), 200000);
  EXPECT_GT(est.value(), 0.0);
}

TEST(P2Quantile, RejectsDegenerateQuantile) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

// ------------------------------------------------------------ saturating_add

TEST(SaturatingAdd, ClampsInsteadOfWrapping) {
  const int64_t max = std::numeric_limits<int64_t>::max();
  const int64_t min = std::numeric_limits<int64_t>::min();
  EXPECT_EQ(saturating_add(max, 1), max);
  EXPECT_EQ(saturating_add(max, max), max);
  EXPECT_EQ(saturating_add(min, -1), min);
  EXPECT_EQ(saturating_add(max - 5, 3), max - 2);
  EXPECT_EQ(saturating_add(40, 2), 42);
}

// ---------------------------------------------------------------- ServeStats

TEST(ServeStats, CountersSaturateOnLongRuns) {
  const int64_t max = std::numeric_limits<int64_t>::max();
  StatsCollector c;
  c.on_batch(1, max);
  c.on_batch(1, max);  // would wrap negative with plain +=
  const ServeStats s = c.snapshot();
  EXPECT_EQ(s.wire_bytes, max);
  EXPECT_EQ(s.wire_bytes_raw, max);  // defaulted raw tally saturates too
  EXPECT_EQ(s.batches, 2);
}

TEST(ServeStats, WireTrafficSplitsCompressedRawAndRetransmits) {
  StatsCollector c;
  // Codec on: compressed bytes crossed, raw bytes would have.
  c.on_batch(2, 600, 1000, 3);
  c.on_batch(1, 400, 800, 0);
  // Codec off (two-argument form): raw mirrors the on-wire bytes.
  c.on_batch(1, 250);
  const ServeStats s = c.snapshot();
  EXPECT_EQ(s.wire_bytes, 600 + 400 + 250);
  EXPECT_EQ(s.wire_bytes_raw, 1000 + 800 + 250);
  EXPECT_EQ(s.retransmits, 3);
}

TEST(ServeStats, WireCountersAccumulateFecAndGoodput) {
  // Full wire accounting: FEC repairs and erasures accumulate, modelled
  // link time sums into the goodput denominator, and the window tracks
  // the most recent batch's sender state.
  StatsCollector c;
  serve::WireCounters w1;
  w1.wire_bytes = 1000;
  w1.wire_bytes_raw = 1600;
  w1.retransmits = 2;
  w1.fec_repaired = 3;
  w1.undelivered = 1;
  w1.wire_time_s = 0.5;
  w1.window = 8.0;
  serve::WireCounters w2;
  w2.wire_bytes = 500;
  w2.wire_bytes_raw = 700;
  w2.fec_repaired = 1;
  w2.wire_time_s = 0.25;
  w2.window = 4.0;
  c.on_batch(2, w1);
  c.on_batch(1, w2);
  const ServeStats s = c.snapshot();
  EXPECT_EQ(s.wire_bytes, 1500);
  EXPECT_EQ(s.wire_bytes_raw, 2300);
  EXPECT_EQ(s.retransmits, 2);
  EXPECT_EQ(s.fec_repaired, 4);
  EXPECT_EQ(s.undelivered, 1);
  EXPECT_DOUBLE_EQ(s.wire_time_s, 0.75);
  EXPECT_DOUBLE_EQ(s.link_window, 4.0);  // latest batch wins
  EXPECT_DOUBLE_EQ(s.goodput_bytes_s(), 1500.0 / 0.75);
  // A wire-less batch (legacy overload) leaves the link fields alone and
  // the goodput denominator unchanged.
  c.on_batch(1, 100);
  const ServeStats s2 = c.snapshot();
  EXPECT_EQ(s2.fec_repaired, 4);
  EXPECT_DOUBLE_EQ(s2.link_window, 4.0);
  EXPECT_DOUBLE_EQ(s2.wire_time_s, 0.75);
}

TEST(ServeStats, GoodputIsZeroWithoutWireTime) {
  StatsCollector c;
  c.on_batch(1, 100);
  EXPECT_DOUBLE_EQ(c.snapshot().goodput_bytes_s(), 0.0);
}

TEST(ServeStats, BatchHistogramIsBoundedWithOverflowBucket) {
  StatsCollector c;
  c.on_batch(3, 10);
  c.on_batch(ServeStats::kBatchHistMax + 500, 10);  // lands in overflow
  c.on_batch(100000, 10);
  const ServeStats s = c.snapshot();
  ASSERT_EQ(s.batch_hist.size(),
            static_cast<size_t>(ServeStats::kBatchHistMax) + 1);
  EXPECT_EQ(s.batch_hist[3], 1);
  EXPECT_EQ(s.batch_hist[static_cast<size_t>(ServeStats::kBatchHistMax)], 2);
}

TEST(ServeStats, SnapshotMemoryDoesNotGrowWithRequestCount) {
  StatsCollector c;
  std::mt19937_64 gen(3);
  std::lognormal_distribution<double> lat(-6.0, 0.5);
  for (int i = 0; i < 10000; ++i) {
    c.on_submit();
    c.on_batch(4, 256);
    c.on_request(lat(gen), true);
  }
  const ServeStats s = c.snapshot();
  EXPECT_EQ(s.completed, 10000);
  // The only dynamically sized member is the (bounded) histogram.
  EXPECT_LE(s.batch_hist.size(),
            static_cast<size_t>(ServeStats::kBatchHistMax) + 1);
  // Percentile estimates are ordered and plausible.
  EXPECT_GT(s.percentile(50), 0.0);
  EXPECT_LE(s.percentile(50), s.percentile(95));
  EXPECT_LE(s.percentile(95), s.percentile(99));
  EXPECT_LE(s.percentile(99), s.max_latency_s);
}

TEST(ServeStats, PercentileRestrictedToTrackedQuantiles) {
  ServeStats s;
  EXPECT_THROW((void)s.percentile(75.0), std::invalid_argument);
}

TEST(ServeStats, MeanBatchSizeSaturatesInsteadOfOverflowing) {
  // Regression: completed and failed individually saturate at INT64_MAX,
  // so a saturated server computing completed + failed with plain + was
  // signed overflow — UB — exactly in the long-run case the saturation
  // exists for. The ratio must clamp, not wrap negative.
  const int64_t max = std::numeric_limits<int64_t>::max();
  ServeStats s;
  s.completed = max;
  s.failed = 7;
  s.batches = 2;
  EXPECT_DOUBLE_EQ(s.mean_batch_size(), static_cast<double>(max) / 2.0);
  s.failed = max;
  s.wall_s = 10.0;
  EXPECT_DOUBLE_EQ(s.mean_batch_size(), static_cast<double>(max) / 2.0);
  EXPECT_DOUBLE_EQ(s.throughput_rps(), static_cast<double>(max) / 10.0);
  EXPECT_GE(s.mean_batch_size(), 0.0);
}

TEST(ServeStats, PerShardLinkWindowsDoNotClobberEachOther) {
  // Regression: a single scalar window shared by all shards was
  // last-writer-wins noise — shard 1's quiet link could mask shard 0's
  // wide-open window. Each shard now reports its own gauge; the scalar
  // compatibility field is the fleet-wide maximum.
  StatsCollector c(nullptr, /*num_shards=*/2);
  serve::WireCounters w0;
  w0.wire_bytes = 100;
  w0.wire_time_s = 0.1;
  w0.window = 8.0;
  serve::WireCounters w1 = w0;
  w1.window = 3.0;
  c.on_batch(1, w0, /*shard=*/0);
  c.on_batch(1, w1, /*shard=*/1);  // would have overwritten 8.0 pre-fix
  const ServeStats s = c.snapshot();
  ASSERT_EQ(s.shard_link_window.size(), 2u);
  EXPECT_DOUBLE_EQ(s.shard_link_window[0], 8.0);
  EXPECT_DOUBLE_EQ(s.shard_link_window[1], 3.0);
  EXPECT_DOUBLE_EQ(s.link_window, 8.0);
}

TEST(ServeStats, SnapshotIsDerivableFromTheTelemetryTree) {
  // The ServeStats compatibility view must be a pure function of the
  // telemetry tree: every field equals a direct read of the registry the
  // collector registered into, including the P² latency marker state
  // byte for byte.
  telemetry::Registry reg;
  StatsCollector c(&reg, /*num_shards=*/2);
  serve::WireCounters w;
  w.wire_bytes = 900;
  w.wire_bytes_raw = 1500;
  w.retransmits = 4;
  w.fec_repaired = 2;
  w.undelivered = 1;
  w.wire_time_s = 0.5;
  w.window = 6.0;
  for (int i = 0; i < 3; ++i) c.on_submit();
  c.on_batch(2, w, 0);
  c.on_batch(1, w, 1);
  c.on_request(0.010, true);
  c.on_request(0.020, true);
  c.on_request(0.500, false);
  c.on_expired(2);
  c.on_stolen(1);
  c.on_scale(true);
  c.on_scale(false);
  c.on_replicas(0, 2);
  c.on_replicas(1, 1);
  // Queue-side producers write the shared shard counters directly.
  reg.counter("serve/shard0/queue/rejected").add(3);
  reg.counter("serve/shard1/queue/rejected").add(2);
  reg.counter("serve/shard0/queue/shed").add(1);
  reg.counter("serve/shard1/queue/expired").add(4);
  reg.counter("serve/shard0/queue/throttled").add(5);

  const ServeStats s = c.snapshot();
  EXPECT_EQ(s.completed, reg.counter_value("serve/requests/completed"));
  EXPECT_EQ(s.failed, reg.counter_value("serve/requests/failed"));
  EXPECT_EQ(s.completed, 2);
  EXPECT_EQ(s.failed, 1);
  EXPECT_EQ(s.rejected, 3 + 2);
  EXPECT_EQ(s.shed, 1);
  EXPECT_EQ(s.throttled, 5);
  // expired = dispatch-phase expiries + every shard's queue expiries.
  EXPECT_EQ(s.expired,
            reg.counter_value("serve/requests/expired_dispatch") + 4);
  EXPECT_EQ(s.stolen, reg.counter_value("serve/requests/stolen"));
  EXPECT_EQ(s.scale_ups, reg.counter_value("serve/autoscale/ups"));
  EXPECT_EQ(s.scale_downs, reg.counter_value("serve/autoscale/downs"));
  EXPECT_EQ(s.batches, reg.counter_value("serve/batch/count"));
  EXPECT_EQ(s.wire_bytes, reg.counter_value("sc/link/wire_bytes"));
  EXPECT_EQ(s.wire_bytes, 1800);
  EXPECT_EQ(s.wire_bytes_raw, reg.counter_value("sc/link/wire_bytes_raw"));
  EXPECT_EQ(s.retransmits, reg.counter_value("sc/link/retransmits"));
  EXPECT_EQ(s.fec_repaired, reg.counter_value("sc/link/fec_repaired"));
  EXPECT_EQ(s.undelivered, reg.counter_value("sc/link/undelivered"));
  EXPECT_DOUBLE_EQ(s.wire_time_s, reg.gauge_value("sc/link/wire_time_s"));
  ASSERT_EQ(s.shard_link_window.size(), 2u);
  for (size_t sh = 0; sh < 2; ++sh) {
    const std::string p = "serve/shard" + std::to_string(sh);
    EXPECT_DOUBLE_EQ(s.shard_link_window[sh],
                     reg.gauge_value(p + "/link/window"));
    EXPECT_EQ(s.shard_replicas[sh],
              static_cast<int64_t>(reg.gauge_value(p + "/replicas")));
  }
  ASSERT_EQ(s.batch_hist.size(), 3u);  // highest bucket hit (2) + 1
  EXPECT_EQ(s.batch_hist[1], reg.counter_value("serve/batch/hist/1"));
  EXPECT_EQ(s.batch_hist[2], reg.counter_value("serve/batch/hist/2"));
  // The latency percentiles are the tree histogram's own P² marker
  // state, byte for byte.
  const telemetry::HistSnapshot lat =
      reg.find_histogram("serve/requests/latency")->snapshot();
  EXPECT_EQ(std::memcmp(&s.lat_p50, &lat.q50, sizeof lat.q50), 0);
  EXPECT_EQ(std::memcmp(&s.lat_p95, &lat.q95, sizeof lat.q95), 0);
  EXPECT_EQ(std::memcmp(&s.lat_p99, &lat.q99, sizeof lat.q99), 0);
  EXPECT_DOUBLE_EQ(s.max_latency_s, lat.max);
  EXPECT_GT(s.wall_s, 0.0);
  // Collector reads and tree reads keep agreeing as updates continue.
  c.on_request(0.030, true);
  EXPECT_EQ(c.snapshot().completed,
            reg.counter_value("serve/requests/completed"));
}

TEST(ServeStats, DrainLatencyWindowResetsOnlyTheWindow) {
  StatsCollector c;
  c.on_request(0.010, true);
  c.on_request(0.020, true);
  const telemetry::HistSnapshot w1 = c.drain_latency_window();
  EXPECT_EQ(w1.count, 2);
  const telemetry::HistSnapshot w2 = c.drain_latency_window();
  EXPECT_EQ(w2.count, 0);  // the window emptied...
  const ServeStats s = c.snapshot();
  EXPECT_EQ(s.completed, 2);  // ...the cumulative histogram did not
  EXPECT_DOUBLE_EQ(s.max_latency_s, 0.020);
}

TEST(ServeStats, MaxLatencyBoundsTheEstimates) {
  StatsCollector c;
  for (const double x : {0.004, 0.001, 0.009, 0.002, 0.007, 0.012})
    c.on_request(x, true);
  const ServeStats s = c.snapshot();
  EXPECT_DOUBLE_EQ(s.max_latency_s, 0.012);
  EXPECT_LE(s.percentile(99), s.max_latency_s);
}

}  // namespace
}  // namespace mtlsplit
