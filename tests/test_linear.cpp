// Linear layer: known-value forward, gradient checks, shape contracts.
#include <gtest/gtest.h>

#include "nn/linear.hpp"
#include "test_util.hpp"

namespace mtlsplit {
namespace {

using testing::expect_gradients_match;

TEST(Linear, ForwardKnownValues) {
  Rng rng(1);
  nn::Linear fc(2, 3, rng);
  // Overwrite weights with known values: W = [[1,2],[3,4],[5,6]], b = [1,1,1].
  fc.weight().value = Tensor({3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6});
  fc.bias().value = Tensor({3}, 1.0f);
  const Tensor x({1, 2}, std::vector<float>{10, 20});
  const Tensor y = fc.forward(x);
  EXPECT_TRUE(y.equals(Tensor({1, 3}, std::vector<float>{51, 111, 171})));
}

TEST(Linear, OutputShape) {
  Rng rng(2);
  nn::Linear fc(5, 7, rng);
  EXPECT_EQ(fc.output_shape({3, 5}), (Shape{3, 7}));
  EXPECT_THROW(fc.output_shape({3, 4}), std::invalid_argument);
  EXPECT_EQ(fc.num_params(), 5 * 7 + 7);
}

TEST(Linear, RejectsWrongInput) {
  Rng rng(3);
  nn::Linear fc(4, 2, rng);
  EXPECT_THROW(fc.forward(Tensor({2, 5})), std::invalid_argument);
  EXPECT_THROW(fc.forward(Tensor({4})), std::invalid_argument);
}

TEST(Linear, GradientsMatchFiniteDifferences) {
  Rng rng(4);
  nn::Linear fc(4, 3, rng);
  Tensor x({5, 4});
  rng.fill_uniform(x, -1.0f, 1.0f);
  expect_gradients_match(fc, x, rng);
}

TEST(Linear, NoBiasVariant) {
  Rng rng(5);
  nn::Linear fc(3, 2, rng, /*with_bias=*/false);
  EXPECT_EQ(fc.parameters().size(), 1u);
  EXPECT_EQ(fc.num_params(), 6);
  Tensor x({2, 3});
  rng.fill_uniform(x, -1.0f, 1.0f);
  expect_gradients_match(fc, x, rng);
}

TEST(Linear, GradientAccumulatesAcrossCalls) {
  Rng rng(6);
  nn::Linear fc(2, 2, rng);
  Tensor x({1, 2}, std::vector<float>{1, 1});
  Tensor g({1, 2}, std::vector<float>{1, 1});
  fc.forward(x);
  fc.backward(g);
  const Tensor after_one = fc.weight().grad;
  fc.forward(x);
  fc.backward(g);
  EXPECT_TRUE(fc.weight().grad.allclose(
      ops::mul_scalar(after_one, 2.0f), 1e-5f));
  fc.zero_grad();
  EXPECT_FLOAT_EQ(ops::sq_norm(fc.weight().grad), 0.0f);
}

TEST(Linear, BackwardValidatesShape) {
  Rng rng(7);
  nn::Linear fc(2, 3, rng);
  fc.forward(Tensor({4, 2}));
  EXPECT_THROW(fc.backward(Tensor({4, 2})), std::invalid_argument);
  EXPECT_THROW(fc.backward(Tensor({3, 3})), std::invalid_argument);
}

}  // namespace
}  // namespace mtlsplit
