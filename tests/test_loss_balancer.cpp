// LossBalancer: Eq. 4's plain sum vs Kendall-style uncertainty weighting.
#include <gtest/gtest.h>

#include <cmath>

#include "mtl/loss_balancer.hpp"

namespace mtlsplit {
namespace {

TEST(LossBalancer, UniformIsThePlainSum) {
  core::LossBalancer lb(core::LossWeighting::kUniform, 3);
  EXPECT_FLOAT_EQ(lb.weight(0), 1.0f);
  EXPECT_FLOAT_EQ(lb.weight(2), 1.0f);
  EXPECT_FLOAT_EQ(lb.total_loss({0.5f, 1.5f, 2.0f}), 4.0f);
  // update is a no-op: weights stay 1 whatever the losses do.
  for (int i = 0; i < 10; ++i) lb.update({10.0f, 0.1f, 5.0f});
  EXPECT_FLOAT_EQ(lb.weight(0), 1.0f);
  EXPECT_TRUE(lb.log_vars().empty() ||
              lb.log_vars() == std::vector<float>(3, 0.0f));
}

TEST(LossBalancer, UncertaintyWeightsAreExpNegS) {
  core::LossBalancer lb(core::LossWeighting::kUncertainty, 2);
  // Fresh balancer: s_j = 0 -> weight 1, total = sum + sum(s) = sum.
  EXPECT_FLOAT_EQ(lb.weight(0), 1.0f);
  EXPECT_FLOAT_EQ(lb.total_loss({1.0f, 2.0f}), 3.0f);
  lb.update({1.0f, 2.0f});
  for (size_t j = 0; j < 2; ++j)
    EXPECT_FLOAT_EQ(lb.weight(j), std::exp(-lb.log_vars()[j]));
}

TEST(LossBalancer, UncertaintyDownWeightsTheNoisyTask) {
  // Task 0 keeps a big loss, task 1 a small one: after enough updates the
  // learned log-variances must order s_0 > s_1, i.e. weight_0 < weight_1.
  core::LossBalancer lb(core::LossWeighting::kUncertainty, 2, 0.05f);
  for (int i = 0; i < 200; ++i) lb.update({4.0f, 0.25f});
  EXPECT_GT(lb.log_vars()[0], lb.log_vars()[1]);
  EXPECT_LT(lb.weight(0), lb.weight(1));
}

TEST(LossBalancer, UncertaintyConvergesToLogLossFixedPoint) {
  // dL/ds_j = 1 - exp(-s_j) L_j vanishes at s_j = log L_j; gradient
  // descent on a constant loss must settle there.
  core::LossBalancer lb(core::LossWeighting::kUncertainty, 2, 0.1f);
  const std::vector<float> losses = {2.0f, 0.5f};
  for (int i = 0; i < 2000; ++i) lb.update(losses);
  EXPECT_NEAR(lb.log_vars()[0], std::log(2.0f), 1e-3f);
  EXPECT_NEAR(lb.log_vars()[1], std::log(0.5f), 1e-3f);
  // At the fixed point every weighted loss is 1: exp(-log L) * L.
  EXPECT_NEAR(lb.weight(0) * losses[0], 1.0f, 1e-3f);
  EXPECT_NEAR(lb.weight(1) * losses[1], 1.0f, 1e-3f);
}

TEST(LossBalancer, TotalLossIncludesTheRegulariser) {
  core::LossBalancer lb(core::LossWeighting::kUncertainty, 1, 0.1f);
  lb.update({4.0f});  // moves s_0 off zero
  const float s = lb.log_vars()[0];
  EXPECT_FLOAT_EQ(lb.total_loss({4.0f}), std::exp(-s) * 4.0f + s);
}

TEST(LossBalancer, ValidatesArguments) {
  EXPECT_THROW(core::LossBalancer(core::LossWeighting::kUniform, 0),
               std::invalid_argument);
  EXPECT_THROW(
      core::LossBalancer(core::LossWeighting::kUncertainty, 2, 0.0f),
      std::invalid_argument);
  core::LossBalancer lb(core::LossWeighting::kUncertainty, 2);
  EXPECT_THROW((void)lb.weight(2), std::out_of_range);
  EXPECT_THROW((void)lb.total_loss({1.0f}), std::invalid_argument);
  EXPECT_THROW(lb.update({1.0f, 2.0f, 3.0f}), std::invalid_argument);
}

}  // namespace
}  // namespace mtlsplit
