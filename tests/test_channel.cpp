// Channel model and int8 quantiser.
#include <gtest/gtest.h>

#include "sc/channel.hpp"
#include "sc/quantize.hpp"
#include "tensor/rng.hpp"
#include "tensor/serialize.hpp"

namespace mtlsplit {
namespace {

TEST(Channel, TransferTimeMatchesPaperArithmetic) {
  // §4.2: ~115 MB over a gigabit channel -> ~0.92 s per input, ~92 s for
  // 100 inputs (the paper rounds to ~98 s including overheads).
  sc::Channel ch({.bandwidth_bps = 1e9});
  const int64_t bytes_115mb = 115LL * 1000 * 1000;
  const double t = ch.transfer_time(bytes_115mb);
  EXPECT_NEAR(t, 0.92, 0.01);
  EXPECT_NEAR(100.0 * t, 92.0, 1.0);
  // And the SC-side numbers: 1.5 MB -> ~0.012 s each, ~1.2 s per 100.
  const double t_sc = ch.transfer_time(1'500'000);
  EXPECT_NEAR(t_sc, 0.012, 0.001);
}

TEST(Channel, BaseLatencyAdds) {
  sc::Channel ch({.bandwidth_bps = 1e9, .base_latency_s = 0.1});
  EXPECT_NEAR(ch.transfer_time(0), 0.1, 1e-12);
  EXPECT_NEAR(ch.transfer_time(1'000'000), 0.1 + 0.008, 1e-6);
}

TEST(Channel, DegradationScalesBandwidth) {
  sc::Channel good({.bandwidth_bps = 1e9});
  sc::Channel bad({.bandwidth_bps = 1e9, .degradation = 0.9});
  EXPECT_NEAR(bad.transfer_time(1'000'000),
              10.0 * good.transfer_time(1'000'000), 1e-9);
}

TEST(Channel, StatsAccumulate) {
  sc::Channel ch({.bandwidth_bps = 1e6});
  (void)ch.transmit(std::vector<uint8_t>(1000, 0));
  (void)ch.transmit(std::vector<uint8_t>(500, 0));
  EXPECT_EQ(ch.messages_sent(), 2);
  EXPECT_EQ(ch.total_bytes(), 1500);
  EXPECT_NEAR(ch.total_time(), 1500.0 * 8.0 / 1e6, 1e-9);
  ch.reset_stats();
  EXPECT_EQ(ch.messages_sent(), 0);
  EXPECT_EQ(ch.total_bytes(), 0);
}

TEST(Channel, CleanChannelPreservesBytes) {
  sc::Channel ch({.bandwidth_bps = 1e9});
  std::vector<uint8_t> msg = {1, 2, 3, 4, 5};
  EXPECT_EQ(ch.transmit(msg), msg);
}

TEST(Channel, CorruptionFlipsBitsAndCrcCatchesIt) {
  sc::Channel ch({.bandwidth_bps = 1e9, .corrupt_prob = 0.5f, .seed = 7});
  Tensor t({64}, 1.0f);
  const auto sent = serialize_tensor(t);
  const auto received = ch.transmit(sent);
  EXPECT_NE(received, sent);
  EXPECT_THROW(deserialize_tensor(received), std::invalid_argument);
}

TEST(Channel, ValidatesConfig) {
  EXPECT_THROW(sc::Channel({.bandwidth_bps = 0.0}), std::invalid_argument);
  EXPECT_THROW(sc::Channel({.bandwidth_bps = 1e9, .degradation = 1.0}),
               std::invalid_argument);
  EXPECT_THROW(sc::Channel({.bandwidth_bps = 1e9, .base_latency_s = -1.0}),
               std::invalid_argument);
  sc::Channel ok({.bandwidth_bps = 1e9});
  EXPECT_THROW(ok.transfer_time(-1), std::invalid_argument);
}

TEST(Quantize, RoundTripErrorBoundedByScale) {
  Rng rng(1);
  Tensor t({256});
  rng.fill_normal(t, 0.0f, 3.0f);
  const sc::QuantizedTensor q = sc::quantize_int8(t);
  const float err = sc::quantization_error(t);
  // Affine double rounding (value + zero point) bounds the error by one
  // scale step, not half.
  EXPECT_LE(err, q.scale * 1.01f + 1e-6f);
  EXPECT_EQ(q.payload_bytes(), 256);
}

TEST(Quantize, ExtremesMapNearRangeEnds) {
  const Tensor t = Tensor::from_values({-10.0f, 0.0f, 10.0f});
  const sc::QuantizedTensor q = sc::quantize_int8(t);
  EXPECT_LE(q.values.front(), -126);
  EXPECT_GE(q.values.back(), 126);
  const Tensor back = sc::dequantize_int8(q);
  EXPECT_NEAR(back[0], -10.0f, 1.01f * q.scale);
  EXPECT_NEAR(back[2], 10.0f, 1.01f * q.scale);
}

TEST(Quantize, ConstantTensorSurvives) {
  const Tensor t({16}, 2.5f);
  const Tensor back = sc::dequantize_int8(sc::quantize_int8(t));
  for (int64_t i = 0; i < 16; ++i) EXPECT_NEAR(back[i], 2.5f, 1e-3f);
}

TEST(Quantize, CompressionRatioIsFourX) {
  const Shape shape{1, 1000};
  EXPECT_LT(wire_size_i8(shape) * 3, wire_size_f32(shape));
  // asymptotically 4x: payload 1000 vs 4000 bytes.
  EXPECT_NEAR(static_cast<double>(wire_size_f32(shape)) /
                  static_cast<double>(wire_size_i8(shape)),
              4.0, 0.2);
}

TEST(Quantize, WireRoundTrip) {
  Rng rng(2);
  Tensor t({2, 8});
  rng.fill_normal(t, 0.0f, 1.0f);
  const sc::QuantizedTensor q = sc::quantize_int8(t);
  const auto bytes = serialize_int8(q.shape, q.values, q.scale, q.zero_point);
  const WireTensor wt = deserialize_tensor(bytes);
  ASSERT_EQ(wt.dtype, WireDtype::kInt8);
  const Tensor back =
      sc::dequantize_int8({wt.shape, wt.i8, wt.scale, wt.zero_point});
  EXPECT_TRUE(back.allclose(t, q.scale * 0.51f + 1e-6f));
}

}  // namespace
}  // namespace mtlsplit
