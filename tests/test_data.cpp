// Dataset container, batching, loaders, splits, noise transforms.
#include <gtest/gtest.h>

#include <set>

#include "data/dataloader.hpp"
#include "data/dataset.hpp"
#include "data/noise.hpp"

namespace mtlsplit {
namespace {

data::MultiTaskDataset tiny_dataset(int64_t k = 10) {
  Tensor images({k, 1, 2, 2});
  for (int64_t i = 0; i < images.numel(); ++i)
    images[i] = static_cast<float>(i);
  std::vector<std::vector<int64_t>> labels(2);
  for (int64_t i = 0; i < k; ++i) {
    labels[0].push_back(i % 3);
    labels[1].push_back(i % 2);
  }
  return data::MultiTaskDataset(std::move(images), std::move(labels),
                                {{"a", 3}, {"b", 2}});
}

TEST(MultiTaskDataset, BasicAccessors) {
  const auto ds = tiny_dataset();
  EXPECT_EQ(ds.size(), 10);
  EXPECT_EQ(ds.num_tasks(), 2);
  EXPECT_EQ(ds.task(0).name, "a");
  EXPECT_EQ(ds.task(1).num_classes, 2);
  EXPECT_EQ(ds.image_shape(), (Shape{1, 2, 2}));
  EXPECT_THROW(ds.task(2), std::out_of_range);
  EXPECT_THROW(ds.labels(2), std::out_of_range);
}

TEST(MultiTaskDataset, ValidatesConstruction) {
  Tensor images({2, 1, 2, 2});
  // Too few labels.
  EXPECT_THROW(data::MultiTaskDataset(images, {{0}}, {{"a", 2}}),
               std::invalid_argument);
  // Label out of class range.
  EXPECT_THROW(data::MultiTaskDataset(images, {{0, 5}}, {{"a", 2}}),
               std::invalid_argument);
  // Task with < 2 classes.
  EXPECT_THROW(data::MultiTaskDataset(images, {{0, 0}}, {{"a", 1}}),
               std::invalid_argument);
}

TEST(MultiTaskDataset, SubsetGathersRows) {
  const auto ds = tiny_dataset();
  const auto sub = ds.subset({3, 7});
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.labels(0)[0], 3 % 3);
  EXPECT_EQ(sub.labels(1)[1], 7 % 2);
  // First image of subset is sample 3's pixels (values 12..15).
  EXPECT_FLOAT_EQ(sub.images()[0], 12.0f);
  EXPECT_THROW(ds.subset({99}), std::out_of_range);
}

TEST(MultiTaskDataset, SelectTasksProjects) {
  const auto ds = tiny_dataset();
  const auto only_b = ds.select_tasks({1});
  EXPECT_EQ(only_b.num_tasks(), 1);
  EXPECT_EQ(only_b.task(0).name, "b");
  EXPECT_EQ(only_b.size(), ds.size());
  // Reordering is allowed too.
  const auto swapped = ds.select_tasks({1, 0});
  EXPECT_EQ(swapped.task(0).name, "b");
  EXPECT_EQ(swapped.task(1).name, "a");
  EXPECT_THROW(ds.select_tasks({5}), std::out_of_range);
  EXPECT_THROW(ds.select_tasks({}), std::invalid_argument);
}

TEST(GatherBatch, CopiesImagesAndLabels) {
  const auto ds = tiny_dataset();
  const std::vector<int64_t> idx = {1, 4};
  const data::Batch b = data::gather_batch(ds, idx);
  EXPECT_EQ(b.size(), 2);
  EXPECT_EQ(b.images.shape(), (Shape{2, 1, 2, 2}));
  EXPECT_FLOAT_EQ(b.images[0], 4.0f);  // sample 1 starts at pixel 4
  EXPECT_EQ(b.labels[0][1], 4 % 3);
}

TEST(DataLoader, CoversEverySampleOncePerEpoch) {
  const auto ds = tiny_dataset(11);
  data::DataLoader loader(ds, 4, /*shuffle=*/true);
  Rng rng(1);
  loader.reset(rng);
  data::Batch b;
  std::multiset<float> seen;
  int64_t total = 0;
  while (loader.next(b)) {
    total += b.size();
    for (int64_t i = 0; i < b.size(); ++i)
      seen.insert(b.images[i * 4]);  // first pixel identifies the sample
  }
  EXPECT_EQ(total, 11);
  EXPECT_EQ(seen.size(), 11u);  // no duplicates
  EXPECT_EQ(loader.batches_per_epoch(), 3);
}

TEST(DataLoader, DropLastSkipsPartialBatch) {
  const auto ds = tiny_dataset(10);
  data::DataLoader loader(ds, 4, /*shuffle=*/false, /*drop_last=*/true);
  Rng rng(2);
  loader.reset(rng);
  data::Batch b;
  int64_t batches = 0;
  while (loader.next(b)) {
    EXPECT_EQ(b.size(), 4);
    ++batches;
  }
  EXPECT_EQ(batches, 2);
  EXPECT_EQ(loader.batches_per_epoch(), 2);
}

TEST(DataLoader, ShuffleIsSeedDeterministic) {
  const auto ds = tiny_dataset(8);
  data::DataLoader l1(ds, 8, true), l2(ds, 8, true);
  Rng r1(3), r2(3);
  l1.reset(r1);
  l2.reset(r2);
  data::Batch b1, b2;
  ASSERT_TRUE(l1.next(b1));
  ASSERT_TRUE(l2.next(b2));
  EXPECT_TRUE(b1.images.equals(b2.images));
}

TEST(TrainTestSplit, PartitionsWithoutOverlap) {
  const auto ds = tiny_dataset(20);
  Rng rng(4);
  const auto split = data::train_test_split(ds, 0.25, rng);
  EXPECT_EQ(split.test.size(), 5);
  EXPECT_EQ(split.train.size(), 15);
  std::multiset<float> ids;
  for (int64_t i = 0; i < split.train.size(); ++i)
    ids.insert(split.train.images()[i * 4]);
  for (int64_t i = 0; i < split.test.size(); ++i)
    ids.insert(split.test.images()[i * 4]);
  EXPECT_EQ(ids.size(), 20u);  // every sample exactly once
  EXPECT_THROW(data::train_test_split(ds, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(data::train_test_split(ds, 1.0, rng), std::invalid_argument);
}

TEST(Noise, SaltAndPepperRate) {
  Tensor images({4, 3, 16, 16}, 0.5f);
  Rng rng(5);
  data::salt_and_pepper(images, 0.15f, rng);
  int64_t corrupted = 0;
  const int64_t plane = 16 * 16;
  for (int64_t i = 0; i < 4; ++i)
    for (int64_t j = 0; j < plane; ++j) {
      const float v = images[(i * 3) * plane + j];
      if (v == 0.0f || v == 1.0f) {
        // All channels of a corrupted pixel carry the same extreme.
        EXPECT_EQ(images[(i * 3 + 1) * plane + j], v);
        EXPECT_EQ(images[(i * 3 + 2) * plane + j], v);
        ++corrupted;
      }
    }
  EXPECT_NEAR(static_cast<double>(corrupted) / (4 * plane), 0.15, 0.03);
}

TEST(Noise, GaussianStaysInRange) {
  Tensor images({2, 1, 8, 8}, 0.5f);
  Rng rng(6);
  data::gaussian_noise(images, 0.5f, rng);
  for (float v : images.span()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Noise, LabelNoiseFlipRate) {
  std::vector<int64_t> labels(10000, 1);
  Rng rng(7);
  data::label_noise(labels, 4, 0.4f, rng);
  int64_t changed = 0;
  for (int64_t y : labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 4);
    if (y != 1) ++changed;
  }
  // 40% flipped, of which 3/4 land on a different class.
  EXPECT_NEAR(static_cast<double>(changed) / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace mtlsplit
