// FEC parity repair for the packetised wire (sc/fec.hpp + sc/link.hpp,
// DESIGN.md §9).
//
// Codec-level properties: any <= P erasures per group — data or parity,
// every position — are reconstructed bitwise; P + 1 erasures are refused
// (decode returns false, data untouched) so the link can fall back to
// retransmit; P == 1 parity is plain XOR. A randomized group-size x
// shard-length x erasure-pattern fuzz sweep backs the exhaustive small
// cases.
//
// Link-level properties: a deterministic one-drop-per-group schedule is
// repaired with ZERO retransmit round trips (the zero-RTT drill the
// bench asserts at 1% loss); more erasures than parity fall back to the
// windowed retransmit path and still deliver bitwise; goodput is
// non-increasing in loss rate under the congestion-window model.
//
// The fuzz seed is environment-overridable (MTLSPLIT_FUZZ_SEED) so CI
// can loop the suite with fresh corpora — see the randomized-decode
// smoke step in .github/workflows/ci.yml.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <vector>

#include "sc/channel.hpp"
#include "sc/fec.hpp"
#include "tensor/rng.hpp"

namespace mtlsplit {
namespace {

uint64_t fuzz_seed() {
  if (const char* env = std::getenv("MTLSPLIT_FUZZ_SEED"))
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  return 0xFEC0;
}

std::vector<std::vector<uint8_t>> make_group(Rng& rng, int64_t g,
                                             size_t len) {
  std::vector<std::vector<uint8_t>> data(static_cast<size_t>(g));
  for (auto& shard : data) {
    shard.resize(len);
    for (auto& b : shard) b = static_cast<uint8_t>(rng.randint(0, 255));
  }
  return data;
}

std::vector<uint8_t> test_message(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> m(n);
  for (auto& b : m) b = static_cast<uint8_t>(rng.randint(0, 255));
  return m;
}

// ------------------------------------------------------- codec: repair

TEST(Fec, SingleParityIsXorOfDataShards) {
  Rng rng(1);
  const auto data = make_group(rng, 6, 32);
  const auto parity = sc::fec_encode(data, 1);
  ASSERT_EQ(parity.size(), 1u);
  std::vector<uint8_t> want(32, 0);
  for (const auto& shard : data)
    for (size_t i = 0; i < shard.size(); ++i) want[i] ^= shard[i];
  EXPECT_EQ(parity[0], want);
}

TEST(Fec, EverySingleErasurePositionRepairsBitwise) {
  // G = 8, P = 1: erase each of the 9 shards in turn. Data erasures must
  // come back bitwise; a parity erasure needs no repair at all.
  Rng rng(2);
  const auto original = make_group(rng, 8, 48);
  const auto parity = sc::fec_encode(original, 1);
  for (size_t pos = 0; pos < 9; ++pos) {
    auto data = original;
    auto par = parity;
    if (pos < 8)
      data[pos].clear();
    else
      par[pos - 8].clear();
    ASSERT_TRUE(sc::fec_decode(data, par)) << "erasure at " << pos;
    EXPECT_EQ(data, original) << "erasure at " << pos;
  }
}

TEST(Fec, ExactlyPErasuresRepairForAllPositions) {
  // G = 5, P = 3: every C(8,3) = 56 way of erasing exactly P of the
  // G + P shards must reconstruct the data bitwise — the MDS property of
  // the Cauchy construction, exhaustively.
  Rng rng(3);
  const auto original = make_group(rng, 5, 17);
  const auto parity = sc::fec_encode(original, 3);
  int combos = 0;
  for (size_t a = 0; a < 8; ++a)
    for (size_t b = a + 1; b < 8; ++b)
      for (size_t c = b + 1; c < 8; ++c) {
        auto data = original;
        auto par = parity;
        for (size_t pos : {a, b, c}) {
          if (pos < 5)
            data[pos].clear();
          else
            par[pos - 5].clear();
        }
        ASSERT_TRUE(sc::fec_decode(data, par))
            << "erasures " << a << "," << b << "," << c;
        EXPECT_EQ(data, original)
            << "erasures " << a << "," << b << "," << c;
        ++combos;
      }
  EXPECT_EQ(combos, 56);
}

TEST(Fec, MoreThanPErasuresAreRefusedAndDataUntouched) {
  // P + 1 erasures leave fewer than G survivors: decode must return
  // false WITHOUT fabricating bytes, so the link falls back to its
  // retransmit path instead of delivering a silent wrong payload.
  Rng rng(4);
  const auto original = make_group(rng, 6, 40);
  const auto parity = sc::fec_encode(original, 2);
  auto data = original;
  auto par = parity;
  data[0].clear();
  data[3].clear();
  par[1].clear();
  auto before = data;
  EXPECT_FALSE(sc::fec_decode(data, par));
  EXPECT_EQ(data, before);
}

TEST(Fec, ValidatesShardShapes) {
  EXPECT_THROW((void)sc::fec_encode({}, 1), std::invalid_argument);
  EXPECT_THROW((void)sc::fec_encode({{1, 2, 3}}, 0), std::invalid_argument);
  EXPECT_THROW((void)sc::fec_encode({{}}, 1), std::invalid_argument);
  EXPECT_THROW((void)sc::fec_encode({{1, 2}, {1, 2, 3}}, 1),
               std::invalid_argument);
  std::vector<std::vector<uint8_t>> too_many(
      200, std::vector<uint8_t>(4, 0));
  EXPECT_THROW((void)sc::fec_encode(too_many, 100), std::invalid_argument);
}

// --------------------------------------------------------- codec: fuzz

TEST(Fec, RandomizedGroupAndErasureSweep) {
  // Random G x P x shard length x erasure pattern: <= P erasures always
  // repair bitwise, > P erasures are always refused.
  Rng rng(fuzz_seed());
  for (int iter = 0; iter < 400; ++iter) {
    const int64_t g = rng.randint(1, 12);
    const int64_t p = rng.randint(1, 4);
    const size_t len = static_cast<size_t>(rng.randint(1, 64));
    const auto original = make_group(rng, g, len);
    const auto parity = sc::fec_encode(original, p);

    // Pick a distinct random erasure set of size 0..p+1 (capped at the
    // shard count) over the g + p shards.
    const int64_t max_erase = std::min<int64_t>(p + 1, g + p);
    const int64_t n_erase = rng.randint(0, max_erase);
    std::vector<size_t> all(static_cast<size_t>(g + p));
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    for (size_t i = 0; i < static_cast<size_t>(n_erase); ++i) {
      const size_t j = static_cast<size_t>(
          rng.randint(static_cast<int64_t>(i),
                      static_cast<int64_t>(all.size()) - 1));
      std::swap(all[i], all[j]);
    }

    auto data = original;
    auto par = parity;
    for (size_t i = 0; i < static_cast<size_t>(n_erase); ++i) {
      const size_t pos = all[i];
      if (pos < static_cast<size_t>(g))
        data[pos].clear();
      else
        par[pos - static_cast<size_t>(g)].clear();
    }

    const bool ok = sc::fec_decode(data, par);
    if (n_erase <= p) {
      ASSERT_TRUE(ok) << "iter " << iter << " g=" << g << " p=" << p
                      << " erased=" << n_erase;
      EXPECT_EQ(data, original) << "iter " << iter;
    } else {
      EXPECT_FALSE(ok) << "iter " << iter << " g=" << g << " p=" << p;
    }
  }
}

// ------------------------------------------------- link: zero-RTT drill

TEST(FecLink, OneErasurePerGroupRepairsWithZeroRetransmits) {
  // G = 8 data + P = 1 parity = 9 packets per group on the wire. The
  // deterministic schedule drops the first attempt of every 7th packet:
  // across three groups (27 packets) that erases one DATA packet per
  // group (sequences 7, 14, 21 — never the parity at 9, 18, 27), so FEC
  // repairs everything receiver-side and the retransmit path never runs.
  sc::Channel ch({.bandwidth_bps = 1e8,
                  .base_latency_s = 0.001,
                  .link = {.mtu_bytes = 100,
                           .drop_every_k = 7,
                           .fec_data = 8,
                           .fec_parity = 1}});
  const auto msg = test_message(2400, 6);  // 24 data packets, 3 groups
  const auto received = ch.transmit(msg);
  EXPECT_EQ(received, msg);  // repaired spans are bitwise the original
  EXPECT_EQ(ch.packets_sent(), 24);
  EXPECT_EQ(ch.parity_packets_sent(), 3);
  EXPECT_EQ(ch.fec_repaired(), 3);
  EXPECT_EQ(ch.retransmits(), 0);  // zero extra round trips
  EXPECT_EQ(ch.undelivered(), 0);
  EXPECT_EQ(ch.last_message_fec_repaired(), 3);
}

TEST(FecLink, BeyondParityBudgetFallsBackToRetransmit) {
  // G = 4 + P = 1: dropping every 2nd packet erases two data packets in
  // each group — beyond the parity budget — so the link must fall back
  // to timeout-driven retransmission and still deliver bitwise.
  sc::Channel ch({.bandwidth_bps = 1e8,
                  .base_latency_s = 0.001,
                  .link = {.mtu_bytes = 100,
                           .drop_every_k = 2,
                           .fec_data = 4,
                           .fec_parity = 1}});
  const auto msg = test_message(800, 7);  // 8 data packets, 2 groups
  const auto received = ch.transmit(msg);
  EXPECT_EQ(received, msg);
  EXPECT_EQ(ch.fec_repaired(), 0);  // groups were unrepairable
  EXPECT_EQ(ch.retransmits(), 4);   // data drops at seq 2, 4, 6, 8
  EXPECT_EQ(ch.undelivered(), 0);
}

TEST(FecLink, ExhaustedBudgetBeyondParityIsTypedNeverSilent) {
  // Two erasures per group, no retransmit budget: the un-repairable data
  // packets surface as counted erasures and a payload mismatch — the
  // bitwise-serving invariant is "repaired or typed", never silent.
  sc::Channel ch({.bandwidth_bps = 1e8,
                  .link = {.mtu_bytes = 100,
                           .max_retransmits = 0,
                           .drop_every_k = 2,
                           .fec_data = 4,
                           .fec_parity = 1}});
  const auto msg = test_message(800, 8);
  const auto received = ch.transmit(msg);
  EXPECT_NE(received, msg);
  EXPECT_EQ(ch.undelivered(), 4);
  EXPECT_EQ(ch.last_message_undelivered(), 4);
  EXPECT_EQ(ch.retransmits(), 0);
}

// -------------------------------------------- link: window monotonicity

TEST(FecLink, GoodputIsNonIncreasingInLossRate) {
  // Under the congestion-window model, loss costs backoff rounds and
  // retransmit timeouts: session goodput (delivered payload bytes per
  // modelled second) must not increase with the loss rate. Averaged over
  // 60 messages so the seeded schedules cannot flip the ordering.
  double prev_goodput = std::numeric_limits<double>::infinity();
  for (float loss : {0.0f, 0.02f, 0.1f, 0.3f}) {
    sc::Channel ch({.bandwidth_bps = 1e8,
                    .base_latency_s = 0.0005,
                    .seed = 13,
                    .link = {.mtu_bytes = 100,
                             .loss_prob = loss,
                             .max_retransmits = 16,
                             .fec_data = 8,
                             .fec_parity = 1}});
    for (uint64_t i = 0; i < 60; ++i)
      (void)ch.transmit(test_message(2000, i));
    const double goodput =
        static_cast<double>(ch.total_bytes()) / ch.total_time();
    EXPECT_LE(goodput, prev_goodput) << "loss " << loss;
    prev_goodput = goodput;
  }
}

TEST(FecLink, RandomizedLossSweepNeverDeliversSilentlyWrong) {
  // Fuzz the link end to end: random message sizes, group shapes, and
  // loss rates. Whatever the loss draws do, the delivery contract holds:
  // undelivered == 0 implies a bitwise payload, undelivered > 0 implies
  // a visibly damaged one, and the counters stay consistent.
  Rng rng(fuzz_seed() + 1);
  for (int iter = 0; iter < 40; ++iter) {
    sc::ChannelConfig cfg{.bandwidth_bps = 1e8,
                          .base_latency_s = 0.0002,
                          .seed = static_cast<uint64_t>(
                              rng.randint(1, 1 << 20))};
    cfg.link.mtu_bytes = rng.randint(32, 256);
    cfg.link.loss_prob = static_cast<float>(rng.uniform(0.0f, 0.3f));
    cfg.link.max_retransmits = static_cast<int>(rng.randint(0, 4));
    cfg.link.fec_data = rng.randint(1, 10);
    cfg.link.fec_parity = rng.randint(1, 3);
    sc::Channel ch(cfg);
    const auto msg = test_message(
        static_cast<size_t>(rng.randint(1, 4000)), 1000 + iter);
    const auto received = ch.transmit(msg);
    ASSERT_EQ(received.size(), msg.size());
    if (ch.undelivered() == 0) {
      EXPECT_EQ(received, msg) << "iter " << iter;
    } else {
      EXPECT_NE(received, msg) << "iter " << iter;
    }
    EXPECT_GE(ch.fec_repaired(), 0);
    EXPECT_GE(ch.retransmits(), 0);
    EXPECT_LE(ch.undelivered(), ch.packets_sent());
    EXPECT_GE(ch.last_message_goodput_bytes_s(), 0.0);
  }
}

}  // namespace
}  // namespace mtlsplit
