// Weight checkpointing: round trips, validation, model-level usage.
#include <gtest/gtest.h>

#include <cstdio>

#include "mtl/model_factory.hpp"
#include "nn/batchnorm.hpp"
#include "nn/checkpoint.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor_ops.hpp"

namespace mtlsplit {
namespace {

class CheckpointFile : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = "/tmp/mtlsplit_ckpt_test.bin";
};

TEST(CheckpointBytes, RoundTripsValues) {
  Rng rng(1);
  nn::Sequential a;
  a.emplace<nn::Linear>(4, 6, rng);
  a.emplace<nn::Linear>(6, 2, rng);
  const auto bytes = nn::parameters_to_bytes(a.parameters());

  Rng rng2(99);  // different init
  nn::Sequential b;
  b.emplace<nn::Linear>(4, 6, rng2);
  b.emplace<nn::Linear>(6, 2, rng2);
  nn::parameters_from_bytes(b.parameters(), bytes);

  Tensor x({3, 4});
  rng.fill_uniform(x, -1.0f, 1.0f);
  EXPECT_TRUE(a.forward(x).equals(b.forward(x)));
}

TEST(CheckpointBytes, ZeroesGradientsOnLoad) {
  Rng rng(2);
  nn::Linear fc(3, 3, rng);
  fc.forward(Tensor({2, 3}, 1.0f));
  fc.backward(Tensor({2, 3}, 1.0f));
  EXPECT_GT(ops::sq_norm(fc.weight().grad), 0.0f);
  const auto bytes = nn::parameters_to_bytes(fc.parameters());
  nn::parameters_from_bytes(fc.parameters(), bytes);
  EXPECT_FLOAT_EQ(ops::sq_norm(fc.weight().grad), 0.0f);
}

TEST(CheckpointBytes, RejectsCountMismatch) {
  Rng rng(3);
  nn::Linear a(2, 2, rng);
  nn::Linear b(2, 2, rng, /*with_bias=*/false);  // one fewer parameter
  const auto bytes = nn::parameters_to_bytes(a.parameters());
  auto params = b.parameters();
  EXPECT_THROW(nn::parameters_from_bytes(params, bytes),
               std::invalid_argument);
}

TEST(CheckpointBytes, RejectsShapeMismatch) {
  Rng rng(4);
  nn::Linear a(2, 3, rng);
  nn::Linear b(3, 2, rng);
  const auto bytes = nn::parameters_to_bytes(a.parameters());
  auto params = b.parameters();
  EXPECT_THROW(nn::parameters_from_bytes(params, bytes),
               std::invalid_argument);
}

TEST(CheckpointBytes, RejectsCorruptedBlob) {
  Rng rng(5);
  nn::Linear a(2, 2, rng);
  auto bytes = nn::parameters_to_bytes(a.parameters());
  bytes[bytes.size() / 2] ^= 0xFF;  // flip inside some tensor payload
  auto params = a.parameters();
  EXPECT_THROW(nn::parameters_from_bytes(params, bytes),
               std::invalid_argument);
  bytes.clear();
  EXPECT_THROW(nn::parameters_from_bytes(params, bytes),
               std::invalid_argument);
}

TEST_F(CheckpointFile, SaveLoadFile) {
  Rng rng(6);
  nn::Sequential a;
  a.emplace<nn::Linear>(5, 4, rng);
  nn::save_parameters(a.parameters(), path_);

  Rng rng2(7);
  nn::Sequential b;
  b.emplace<nn::Linear>(5, 4, rng2);
  nn::load_parameters(b.parameters(), path_);
  Tensor x({2, 5}, 0.3f);
  EXPECT_TRUE(a.forward(x).equals(b.forward(x)));
}

TEST_F(CheckpointFile, MissingFileThrows) {
  Rng rng(8);
  nn::Linear fc(2, 2, rng);
  auto params = fc.parameters();
  EXPECT_THROW(nn::load_parameters(params, "/nonexistent/dir/x.bin"),
               std::runtime_error);
  EXPECT_THROW(nn::save_parameters(params, "/nonexistent/dir/x.bin"),
               std::runtime_error);
}

TEST_F(CheckpointFile, FullMtlModelRoundTripIncludingBnStats) {
  core::ModelFactoryConfig cfg;
  cfg.backbone = models::BackboneKind::kMobileNetV3;
  cfg.image_shape = {3, 16, 16};
  Rng rng(9);
  auto a = core::make_mtl_model(cfg, {{"t0", 4}, {"t1", 3}}, rng);
  // A training-mode forward moves the BatchNorm running statistics away
  // from their init; the checkpoint must carry them (they change eval
  // outputs).
  Tensor warm({4, 3, 16, 16});
  rng.fill_uniform(warm, 0.0f, 1.0f);
  (void)a->forward(warm);
  nn::save_parameters(a->all_params(), path_, a->all_buffers());

  Rng rng2(10);
  auto b = core::make_mtl_model(cfg, {{"t0", 4}, {"t1", 3}}, rng2);
  nn::load_parameters(b->all_params(), path_, b->all_buffers());

  a->set_training(false);
  b->set_training(false);
  Tensor x({2, 3, 16, 16});
  rng.fill_uniform(x, 0.0f, 1.0f);
  const auto la = a->forward(x);
  const auto lb = b->forward(x);
  for (size_t j = 0; j < la.size(); ++j) EXPECT_TRUE(la[j].equals(lb[j]));
}

TEST(CheckpointModule, SaveLoadModuleCarriesBuffers) {
  Rng rng(11);
  nn::Sequential a;
  a.emplace<nn::Conv2d>(2, 4, 3, 1, 1, rng, false);
  a.emplace<nn::BatchNorm2d>(4);
  Tensor warm({4, 2, 6, 6});
  rng.fill_normal(warm, 1.0f, 2.0f);
  (void)a.forward(warm);
  ASSERT_EQ(a.buffers().size(), 2u);

  const std::string path = "/tmp/mtlsplit_ckpt_module.bin";
  nn::save_module(a, path);
  Rng rng2(12);
  nn::Sequential b;
  b.emplace<nn::Conv2d>(2, 4, 3, 1, 1, rng2, false);
  b.emplace<nn::BatchNorm2d>(4);
  nn::load_module(b, path);
  std::remove(path.c_str());

  a.set_training(false);
  b.set_training(false);
  Tensor x({1, 2, 6, 6});
  rng.fill_normal(x, 0.0f, 1.0f);
  EXPECT_TRUE(a.forward(x).equals(b.forward(x)));
}

TEST(CheckpointBytes, BufferCountMismatchRejected) {
  Rng rng(13);
  nn::BatchNorm2d bn(2);
  const auto bytes =
      nn::parameters_to_bytes(bn.parameters(), bn.buffers());
  auto params = bn.parameters();
  // Loading without declaring the buffers must fail loudly.
  EXPECT_THROW(nn::parameters_from_bytes(params, bytes),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtlsplit
