// Fine-tuning (paper §3.3, Eqs. 5-7): two-rate head/backbone adaptation.
#include <gtest/gtest.h>

#include "data/shapes3d.hpp"
#include "mtl/finetune.hpp"
#include "mtl/model_factory.hpp"

namespace mtlsplit {
namespace {

struct FinetuneRig {
  data::MultiTaskDataset ds;
  std::unique_ptr<core::MtlSplitModel> model;

  FinetuneRig() {
    data::Shapes3dConfig dc;
    dc.count = 64;
    dc.image_size = 12;
    ds = data::make_shapes3d_t1t2(dc);
    Rng rng(5);
    core::ModelFactoryConfig mc;
    mc.backbone = models::BackboneKind::kMobileNetV3;
    mc.image_shape = ds.image_shape();
    mc.head_hidden_dim = 16;
    model = core::make_mtl_model(mc, {ds.task(0), ds.task(1)}, rng);
  }

  std::vector<Tensor> snapshot(std::vector<nn::Parameter*> params) const {
    std::vector<Tensor> out;
    for (nn::Parameter* p : params) out.push_back(p->value);
    return out;
  }
};

bool all_equal(const std::vector<Tensor>& snap,
               std::vector<nn::Parameter*> params) {
  for (size_t i = 0; i < snap.size(); ++i)
    if (!snap[i].equals(params[i]->value)) return false;
  return true;
}

bool any_changed(const std::vector<Tensor>& snap,
                 std::vector<nn::Parameter*> params) {
  for (size_t i = 0; i < snap.size(); ++i)
    if (!snap[i].equals(params[i]->value)) return true;
  return false;
}

TEST(Finetune, EtaZeroFreezesTheBackboneBitwise) {
  FinetuneRig rig;
  const auto backbone_before = rig.snapshot(rig.model->backbone_params());
  const auto heads_before = rig.snapshot(rig.model->all_head_params());

  core::FinetuneConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 16;
  cfg.eta = 0.0f;  // Eq. 6 with a frozen psi
  const core::TrainHistory hist = core::finetune_model(*rig.model, rig.ds, cfg);

  EXPECT_TRUE(all_equal(backbone_before, rig.model->backbone_params()))
      << "frozen backbone weights moved";
  EXPECT_TRUE(any_changed(heads_before, rig.model->all_head_params()))
      << "heads did not learn at alpha";
  ASSERT_EQ(hist.epoch_loss.size(), 1u);
  ASSERT_EQ(hist.task_loss[0].size(), 2u);
  EXPECT_TRUE(std::isfinite(hist.epoch_loss[0]));
}

TEST(Finetune, PositiveEtaUpdatesTheBackboneConservatively) {
  FinetuneRig rig;
  const auto backbone_before = rig.snapshot(rig.model->backbone_params());
  core::FinetuneConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 16;
  cfg.eta = 1e-5f;
  core::finetune_model(*rig.model, rig.ds, cfg);
  EXPECT_TRUE(any_changed(backbone_before, rig.model->backbone_params()))
      << "eta > 0 must let psi move";
}

TEST(Finetune, LossDecreasesOverEpochs) {
  FinetuneRig rig;
  core::FinetuneConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 16;
  const core::TrainHistory hist = core::finetune_model(*rig.model, rig.ds, cfg);
  ASSERT_EQ(hist.epoch_loss.size(), 3u);
  EXPECT_LT(hist.epoch_loss.back(), hist.epoch_loss.front());
}

TEST(Finetune, ValidatesConfig) {
  FinetuneRig rig;
  core::FinetuneConfig bad;
  bad.eta = 1.0f;
  bad.alpha = 1e-3f;  // eta > alpha contradicts Eq. 6's eta << alpha
  EXPECT_THROW(core::finetune_model(*rig.model, rig.ds, bad),
               std::invalid_argument);
  core::FinetuneConfig zero_epochs;
  zero_epochs.epochs = 0;
  EXPECT_THROW(core::finetune_model(*rig.model, rig.ds, zero_epochs),
               std::invalid_argument);
}

TEST(Finetune, TaskCountMismatchRejected) {
  FinetuneRig rig;
  const auto single = rig.ds.select_tasks({0});
  EXPECT_THROW(core::finetune_model(*rig.model, single, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtlsplit
